//! Length-prefixed wire codec for [`DomMsg`] and the session frames the
//! cluster runtime exchanges around it.
//!
//! Layout: every frame is `u32-LE length ‖ body`; the body starts with a
//! one-byte frame tag, and [`DomMsg`] bodies with a one-byte message tag
//! (declaration order). Integers are little-endian; byte strings are
//! `u32-LE length ‖ bytes`; `Option` is a one-byte presence tag; `bool`
//! is strictly `0`/`1`. Identifiers are validated on decode
//! ([`ProcessorId`]/[`NodeId`] must fit the 64-processor universe), the
//! length prefix is capped at [`MAX_FRAME`] so a corrupt prefix cannot
//! balloon allocation, and a frame with undecoded trailing bytes is
//! rejected — decoding never panics and never trusts the peer.
//!
//! Errors are typed: [`DomaError::WireTruncated`] when bytes ran out
//! (incremental callers treat this at the frame boundary as "wait for
//! more"), [`DomaError::WireCorrupt`] for structural violations.

use doma_core::{DomaError, ObjectId, ProcSet, ProcessorId, Result};
use doma_protocol::{DomMsg, ReadPlan, WritePlan};
use doma_sim::{MsgKind, NodeId};
use doma_storage::Version;

/// Maximum frame body length the codec will accept or produce (1 MiB).
/// Protocol payloads are tiny; anything bigger is a corrupt length
/// prefix, not a message.
pub const MAX_FRAME: usize = 1 << 20;

/// The sender id the cluster driver introduces itself with in its
/// [`WireFrame::Hello`] — deliberately outside every valid node id.
pub const DRIVER_ID: u64 = u64::MAX;

/// One session-layer frame of the cluster runtime.
///
/// `Hello` opens every connection (node id, or [`DRIVER_ID`]); `Peer`
/// carries a protocol message node-to-node; `Client` injects a planned
/// client request from the driver (delivered with `from = self`, exactly
/// like the sim engine's local injection); `Poll`/`PollReply` implement
/// the driver's double-poll quiescence barrier; `Report`/`ReportReply`
/// collect per-node tallies; `Shutdown` ends a node's event loop.
#[derive(Debug, Clone, PartialEq)]
pub enum WireFrame {
    /// Connection opener: who is talking.
    Hello {
        /// The sender's node id, or [`DRIVER_ID`] for the driver.
        node: u64,
    },
    /// A protocol message between nodes.
    Peer {
        /// Sending node.
        from: u64,
        /// Network pricing class of the message (control vs data).
        kind: MsgKind,
        /// The protocol message itself.
        msg: DomMsg,
    },
    /// A driver-injected client request.
    Client {
        /// The planned client message (`ClientRead`/`ClientWrite`).
        msg: DomMsg,
    },
    /// Driver → node: report your send/receive counters.
    Poll,
    /// Node → driver: monotone counters of node-to-node `Peer` frames.
    PollReply {
        /// Peer frames this node has written.
        sent: u64,
        /// Peer frames this node has handled.
        received: u64,
    },
    /// Driver → node: report your protocol tallies.
    Report,
    /// Node → driver: the tallies [`crate::NodeReport`] is built from.
    ReportReply {
        /// Whether the node currently holds a valid replica.
        holds: bool,
        /// Store I/O operations performed.
        io: u64,
        /// Control messages sent (driver frames excluded — mirrors the
        /// sim engine, which does not tally locally injected requests).
        control_sent: u64,
        /// Data messages sent.
        data_sent: u64,
        /// Reads completed at this node.
        reads: u64,
        /// Total read latency in transport ticks.
        latency: u64,
        /// Protocol errors recorded at this node.
        errors: u64,
    },
    /// Driver → node: drain and exit the event loop.
    Shutdown,
}

// ---------------------------------------------------------------------
// Primitive writers
// ---------------------------------------------------------------------

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

fn put_bytes(out: &mut Vec<u8>, v: &[u8]) {
    put_u32(out, v.len() as u32);
    out.extend_from_slice(v);
}

fn put_opt_proc(out: &mut Vec<u8>, v: Option<ProcessorId>) {
    match v {
        None => put_u8(out, 0),
        Some(p) => {
            put_u8(out, 1);
            put_u8(out, p.index() as u8);
        }
    }
}

// ---------------------------------------------------------------------
// Primitive readers
// ---------------------------------------------------------------------

/// A bounds-checked read cursor over one frame body.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let have = self.buf.len() - self.pos;
        if have < n {
            return Err(DomaError::WireTruncated { needed: n, have });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn bool(&mut self, context: &'static str) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DomaError::WireCorrupt { context }),
        }
    }

    fn bytes(&mut self) -> Result<Vec<u8>> {
        let len = self.u32()? as usize;
        if len > MAX_FRAME {
            return Err(DomaError::WireCorrupt {
                context: "byte-string length",
            });
        }
        Ok(self.take(len)?.to_vec())
    }

    fn proc(&mut self) -> Result<ProcessorId> {
        let raw = self.u8()? as usize;
        if raw >= doma_core::MAX_PROCESSORS {
            return Err(DomaError::WireCorrupt {
                context: "ProcessorId",
            });
        }
        Ok(ProcessorId::new(raw))
    }

    fn opt_proc(&mut self) -> Result<Option<ProcessorId>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.proc()?)),
            _ => Err(DomaError::WireCorrupt {
                context: "Option tag",
            }),
        }
    }

    fn node_id(&mut self) -> Result<NodeId> {
        let raw = self.u64()?;
        if raw >= doma_core::MAX_PROCESSORS as u64 {
            return Err(DomaError::WireCorrupt { context: "NodeId" });
        }
        Ok(NodeId(raw as usize))
    }

    fn finish(self, context: &'static str) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(DomaError::WireCorrupt { context });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// DomMsg body codec
// ---------------------------------------------------------------------

fn put_read_plan(out: &mut Vec<u8>, plan: &Option<ReadPlan>) {
    match plan {
        None => put_u8(out, 0),
        Some(p) => {
            put_u8(out, 1);
            put_opt_proc(out, p.server);
            put_bool(out, p.saving);
            put_opt_proc(out, p.fallback);
        }
    }
}

fn put_write_plan(out: &mut Vec<u8>, plan: &Option<WritePlan>) {
    match plan {
        None => put_u8(out, 0),
        Some(p) => {
            put_u8(out, 1);
            put_u64(out, p.exec.bits());
            put_u64(out, p.invalidate.bits());
            put_bool(out, p.self_invalidate);
        }
    }
}

fn read_read_plan(c: &mut Cursor<'_>) -> Result<Option<ReadPlan>> {
    match c.u8()? {
        0 => Ok(None),
        1 => Ok(Some(ReadPlan {
            server: c.opt_proc()?,
            saving: c.bool("ReadPlan.saving")?,
            fallback: c.opt_proc()?,
        })),
        _ => Err(DomaError::WireCorrupt {
            context: "ReadPlan tag",
        }),
    }
}

fn read_write_plan(c: &mut Cursor<'_>) -> Result<Option<WritePlan>> {
    match c.u8()? {
        0 => Ok(None),
        1 => Ok(Some(WritePlan {
            exec: ProcSet::from_bits(c.u64()?),
            invalidate: ProcSet::from_bits(c.u64()?),
            self_invalidate: c.bool("WritePlan.self_invalidate")?,
        })),
        _ => Err(DomaError::WireCorrupt {
            context: "WritePlan tag",
        }),
    }
}

/// Serializes one [`DomMsg`] body (no length prefix; tags follow
/// declaration order).
pub fn encode_msg(out: &mut Vec<u8>, msg: &DomMsg) {
    match msg {
        DomMsg::ClientRead { object, plan } => {
            put_u8(out, 0);
            put_u64(out, object.0);
            put_read_plan(out, plan);
        }
        DomMsg::ClientWrite {
            object,
            version,
            payload,
            plan,
        } => {
            put_u8(out, 1);
            put_u64(out, object.0);
            put_u64(out, version.0);
            put_bytes(out, payload);
            put_write_plan(out, plan);
        }
        DomMsg::ReadReq {
            object,
            saving,
            round,
        } => {
            put_u8(out, 2);
            put_u64(out, object.0);
            put_bool(out, *saving);
            put_u64(out, *round);
        }
        DomMsg::ObjData {
            object,
            version,
            payload,
            save,
            round,
        } => {
            put_u8(out, 3);
            put_u64(out, object.0);
            put_u64(out, version.0);
            put_bytes(out, payload);
            put_bool(out, *save);
            put_u64(out, *round);
        }
        DomMsg::NoData { object, round } => {
            put_u8(out, 4);
            put_u64(out, object.0);
            put_u64(out, *round);
        }
        DomMsg::WriteProp {
            object,
            version,
            payload,
            writer,
        } => {
            put_u8(out, 5);
            put_u64(out, object.0);
            put_u64(out, version.0);
            put_bytes(out, payload);
            put_u64(out, writer.0 as u64);
        }
        DomMsg::Invalidate { object, version } => {
            put_u8(out, 6);
            put_u64(out, object.0);
            put_u64(out, version.0);
        }
        DomMsg::ModeChange { quorum } => {
            put_u8(out, 7);
            put_bool(out, *quorum);
        }
        DomMsg::CatchUp { object } => {
            put_u8(out, 8);
            put_u64(out, object.0);
        }
    }
}

fn read_msg(c: &mut Cursor<'_>) -> Result<DomMsg> {
    let tag = c.u8()?;
    Ok(match tag {
        0 => DomMsg::ClientRead {
            object: ObjectId(c.u64()?),
            plan: read_read_plan(c)?,
        },
        1 => DomMsg::ClientWrite {
            object: ObjectId(c.u64()?),
            version: Version(c.u64()?),
            payload: c.bytes()?,
            plan: read_write_plan(c)?,
        },
        2 => DomMsg::ReadReq {
            object: ObjectId(c.u64()?),
            saving: c.bool("ReadReq.saving")?,
            round: c.u64()?,
        },
        3 => DomMsg::ObjData {
            object: ObjectId(c.u64()?),
            version: Version(c.u64()?),
            payload: c.bytes()?,
            save: c.bool("ObjData.save")?,
            round: c.u64()?,
        },
        4 => DomMsg::NoData {
            object: ObjectId(c.u64()?),
            round: c.u64()?,
        },
        5 => DomMsg::WriteProp {
            object: ObjectId(c.u64()?),
            version: Version(c.u64()?),
            payload: c.bytes()?,
            writer: c.node_id()?,
        },
        6 => DomMsg::Invalidate {
            object: ObjectId(c.u64()?),
            version: Version(c.u64()?),
        },
        7 => DomMsg::ModeChange {
            quorum: c.bool("ModeChange.quorum")?,
        },
        8 => DomMsg::CatchUp {
            object: ObjectId(c.u64()?),
        },
        _ => {
            return Err(DomaError::WireCorrupt {
                context: "DomMsg tag",
            })
        }
    })
}

/// Decodes one [`DomMsg`] from a complete body, rejecting trailing bytes.
pub fn decode_msg(buf: &[u8]) -> Result<DomMsg> {
    let mut c = Cursor::new(buf);
    let msg = read_msg(&mut c)?;
    c.finish("DomMsg trailing bytes")?;
    Ok(msg)
}

// ---------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------

fn msg_kind_tag(kind: MsgKind) -> u8 {
    match kind {
        MsgKind::Control => 0,
        MsgKind::Data => 1,
    }
}

/// Serializes a session frame, *with* its `u32`-LE length prefix, ready
/// to write to a socket.
pub fn encode_frame(frame: &WireFrame) -> Vec<u8> {
    let mut body = Vec::new();
    match frame {
        WireFrame::Hello { node } => {
            put_u8(&mut body, 0);
            put_u64(&mut body, *node);
        }
        WireFrame::Peer { from, kind, msg } => {
            put_u8(&mut body, 1);
            put_u64(&mut body, *from);
            put_u8(&mut body, msg_kind_tag(*kind));
            encode_msg(&mut body, msg);
        }
        WireFrame::Client { msg } => {
            put_u8(&mut body, 2);
            encode_msg(&mut body, msg);
        }
        WireFrame::Poll => put_u8(&mut body, 3),
        WireFrame::PollReply { sent, received } => {
            put_u8(&mut body, 4);
            put_u64(&mut body, *sent);
            put_u64(&mut body, *received);
        }
        WireFrame::Report => put_u8(&mut body, 5),
        WireFrame::ReportReply {
            holds,
            io,
            control_sent,
            data_sent,
            reads,
            latency,
            errors,
        } => {
            put_u8(&mut body, 6);
            put_bool(&mut body, *holds);
            put_u64(&mut body, *io);
            put_u64(&mut body, *control_sent);
            put_u64(&mut body, *data_sent);
            put_u64(&mut body, *reads);
            put_u64(&mut body, *latency);
            put_u64(&mut body, *errors);
        }
        WireFrame::Shutdown => put_u8(&mut body, 7),
    }
    debug_assert!(body.len() <= MAX_FRAME);
    let mut out = Vec::with_capacity(4 + body.len());
    put_u32(&mut out, body.len() as u32);
    out.extend_from_slice(&body);
    out
}

/// Decodes one session frame from a complete body (length prefix already
/// stripped by [`Decoder`]), rejecting trailing bytes.
pub fn decode_frame(buf: &[u8]) -> Result<WireFrame> {
    let mut c = Cursor::new(buf);
    let frame = match c.u8()? {
        0 => WireFrame::Hello { node: c.u64()? },
        1 => WireFrame::Peer {
            from: c.u64()?,
            kind: match c.u8()? {
                0 => MsgKind::Control,
                1 => MsgKind::Data,
                _ => {
                    return Err(DomaError::WireCorrupt {
                        context: "MsgKind tag",
                    })
                }
            },
            msg: read_msg(&mut c)?,
        },
        2 => WireFrame::Client {
            msg: read_msg(&mut c)?,
        },
        3 => WireFrame::Poll,
        4 => WireFrame::PollReply {
            sent: c.u64()?,
            received: c.u64()?,
        },
        5 => WireFrame::Report,
        6 => WireFrame::ReportReply {
            holds: c.bool("ReportReply.holds")?,
            io: c.u64()?,
            control_sent: c.u64()?,
            data_sent: c.u64()?,
            reads: c.u64()?,
            latency: c.u64()?,
            errors: c.u64()?,
        },
        7 => WireFrame::Shutdown,
        _ => {
            return Err(DomaError::WireCorrupt {
                context: "WireFrame tag",
            })
        }
    };
    c.finish("WireFrame trailing bytes")?;
    Ok(frame)
}

/// Incremental frame extractor: feed it raw socket bytes in arbitrary
/// splits, pull complete frame bodies out.
///
/// A partial length prefix or partial body is simply "no frame yet"; a
/// length prefix beyond [`MAX_FRAME`] is corruption (typed, not a
/// panic — the connection should be dropped).
#[derive(Debug, Default)]
pub struct Decoder {
    buf: Vec<u8>,
}

impl Decoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes read from the socket.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Extracts the next complete frame body, if one is buffered.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > MAX_FRAME {
            return Err(DomaError::WireCorrupt {
                context: "frame length prefix",
            });
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let body = self.buf[4..4 + len].to_vec();
        self.buf.drain(..4 + len);
        Ok(Some(body))
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DomMsg {
        DomMsg::ClientWrite {
            object: ObjectId(3),
            version: Version(9),
            payload: b"payload-3-9".to_vec(),
            plan: Some(WritePlan {
                exec: ProcSet::from_iter([0usize, 2]),
                invalidate: ProcSet::from_iter([1usize]),
                self_invalidate: true,
            }),
        }
    }

    #[test]
    fn msg_roundtrip() {
        let msg = sample();
        let mut buf = Vec::new();
        encode_msg(&mut buf, &msg);
        assert_eq!(decode_msg(&buf).unwrap(), msg);
    }

    #[test]
    fn frame_roundtrip_via_decoder() {
        let frame = WireFrame::Peer {
            from: 2,
            kind: MsgKind::Data,
            msg: sample(),
        };
        let bytes = encode_frame(&frame);
        let mut dec = Decoder::new();
        dec.feed(&bytes);
        let body = dec.next_frame().unwrap().unwrap();
        assert_eq!(decode_frame(&body).unwrap(), frame);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn trailing_bytes_are_corruption() {
        let mut buf = Vec::new();
        encode_msg(
            &mut buf,
            &DomMsg::CatchUp {
                object: ObjectId(1),
            },
        );
        buf.push(0xAB);
        assert_eq!(
            decode_msg(&buf),
            Err(DomaError::WireCorrupt {
                context: "DomMsg trailing bytes"
            })
        );
    }

    #[test]
    fn oversized_length_prefix_is_corruption() {
        let mut dec = Decoder::new();
        dec.feed(&(MAX_FRAME as u32 + 1).to_le_bytes());
        dec.feed(&[0u8; 16]);
        assert!(matches!(
            dec.next_frame(),
            Err(DomaError::WireCorrupt {
                context: "frame length prefix"
            })
        ));
    }
}

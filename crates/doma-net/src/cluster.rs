//! The loopback cluster driver: N protocol nodes on threads, real
//! sockets between them, one driver that plans and injects requests.
//!
//! The driver executes a schedule *closed-loop*, exactly like
//! [`doma_protocol::ProtocolSim`]: it injects one client request, waits
//! for the cluster to go quiet, then injects the next. Quiescence is a
//! Mattern-style double barrier over monotone per-node counters of
//! node-to-node frames: the driver polls every node for `(sent,
//! received)`, and the cluster is quiet when two consecutive polls
//! return identical vectors whose send and receive totals agree — any
//! in-flight frame makes the totals disagree, and any activity between
//! polls changes the vector.
//!
//! Requests are planned by the same [`ClientPlanner`] the sim driver
//! uses, so the injected message sequence is byte-identical to the sim
//! twin's by construction; what the cluster actually *does* with those
//! messages is what `domactl cluster` cross-checks.

use crate::codec::{WireFrame, DRIVER_ID};
use crate::runtime::{self, Addr, Conn, FrameConn, Listener, NodeSetup, TransportKind};
use doma_core::{CostVector, DomaError, ObjectId, ProcSet, ProcessorId, Request, Result, Schedule};
use doma_protocol::{ClientPlanner, DomNode, PlanOracle, ProtocolConfig};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Poll rounds the driver will issue before declaring the cluster hung.
const POLL_BUDGET: usize = 5_000;

/// Distinguishes concurrently running clusters' UDS directories within
/// one process (tests run many).
static CLUSTER_SEQ: AtomicU64 = AtomicU64::new(0);

/// Per-node tallies collected by a [`WireFrame::Report`] round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeReport {
    /// Whether the node holds a valid replica.
    pub holds: bool,
    /// Store I/O operations performed.
    pub io: u64,
    /// Control messages this node sent (driver injections excluded).
    pub control_sent: u64,
    /// Data messages this node sent.
    pub data_sent: u64,
    /// Reads completed at this node.
    pub reads: u64,
    /// Total read latency in transport ticks.
    pub latency: u64,
    /// Protocol errors recorded at this node.
    pub errors: u64,
}

/// Aggregate cluster tallies, shaped for comparison against
/// [`doma_protocol::SimReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// Exact resource totals: control/data frames written node-to-node
    /// and I/Os performed — the same three resources the sim tallies.
    pub cost: CostVector,
    /// Nodes holding a valid replica — the allocation scheme.
    pub final_holders: ProcSet,
    /// Reads completed across the cluster.
    pub reads_completed: u64,
    /// Protocol errors recorded across the cluster.
    pub errors: u64,
    /// The per-node breakdown.
    pub nodes: Vec<NodeReport>,
}

/// A running loopback cluster: node threads, sockets, and the driver's
/// planning state.
pub struct Cluster {
    n: usize,
    planner: ClientPlanner,
    conns: Vec<FrameConn>,
    handles: Vec<runtime::NodeHandle>,
    uds_dir: Option<PathBuf>,
}

impl Cluster {
    /// Boots a cluster of `n` nodes serving `configs`, over TCP loopback
    /// or UDS per `kind`. Adaptive objects get their driver-side
    /// `oracles` installed in the planner (same contract as
    /// [`doma_protocol::ProtocolSim::new_adaptive`]). When `obs` is
    /// given, every node tallies into it — node threads share the bundle,
    /// and all protocol metrics are commutative counters, so totals are
    /// deterministic regardless of delivery interleaving.
    ///
    /// Fails with [`DomaError::Net`] when the platform refuses sockets
    /// (sandboxes without network namespaces) — callers treat that as
    /// "runtime unavailable", not as a protocol failure.
    pub fn new(
        n: usize,
        configs: BTreeMap<ObjectId, ProtocolConfig>,
        oracles: Vec<(ObjectId, Box<dyn PlanOracle>)>,
        kind: TransportKind,
        obs: Option<doma_obs::Obs>,
    ) -> Result<Cluster> {
        if n == 0 || n > doma_core::MAX_PROCESSORS {
            return Err(DomaError::InvalidConfig(format!("bad cluster size {n}")));
        }
        if configs.is_empty() {
            return Err(DomaError::InvalidConfig("empty object catalog".into()));
        }
        let uds_dir = match kind {
            TransportKind::Uds => {
                let dir = std::env::temp_dir().join(format!(
                    "doma-net-{}-{}",
                    std::process::id(),
                    CLUSTER_SEQ.fetch_add(1, Ordering::Relaxed)
                ));
                std::fs::create_dir_all(&dir)
                    .map_err(|e| DomaError::Net(format!("create uds dir: {e}")))?;
                Some(dir)
            }
            TransportKind::Tcp => None,
        };
        let fallback = std::env::temp_dir();
        let dir = uds_dir.as_deref().unwrap_or(&fallback);

        // Bind every listener before anything connects: the mesh and the
        // driver can then connect in any order.
        let mut listeners = Vec::with_capacity(n);
        let mut addrs: Vec<Addr> = Vec::with_capacity(n);
        for i in 0..n {
            let (l, addr) = Listener::bind(kind, i, dir)?;
            listeners.push(l);
            addrs.push(addr);
        }

        let mut handles = Vec::with_capacity(n);
        for (i, listener) in listeners.into_iter().enumerate() {
            let mut node = DomNode::with_catalog(ProcessorId::new(i), n, configs.clone(), 0);
            if let Some(bundle) = &obs {
                node.set_obs(bundle.clone());
            }
            let peers = addrs
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(j, a)| (j, a.clone()))
                .collect();
            handles.push(runtime::spawn_node(NodeSetup {
                id: i,
                node,
                listener,
                peers,
                self_addr: addrs[i].clone(),
            }));
        }

        let mut conns = Vec::with_capacity(n);
        for addr in &addrs {
            let mut conn = Conn::connect_retry(addr)?;
            conn.write_frame(&WireFrame::Hello { node: DRIVER_ID })?;
            conns.push(FrameConn::new(conn));
        }

        let mut planner = ClientPlanner::new(n, configs.keys().copied());
        for (object, oracle) in oracles {
            planner.install_oracle(object, oracle);
        }

        Ok(Cluster {
            n,
            planner,
            conns,
            handles,
            uds_dir,
        })
    }

    /// Cluster size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Plans and injects one client request, then waits for quiescence —
    /// the closed-loop step, mirroring
    /// [`doma_protocol::ProtocolSim::execute_request_on`].
    pub fn execute_request(&mut self, object: ObjectId, request: Request) -> Result<()> {
        let planned = self.planner.plan(object, request)?;
        self.conns[planned.to.0]
            .writer()
            .write_frame(&WireFrame::Client { msg: planned.msg })?;
        self.quiesce()
    }

    /// Executes a whole schedule closed-loop against `object`, recording
    /// the allocation scheme (valid-replica holders) after every
    /// request — the trajectory the sim twin is diffed against.
    pub fn execute_schedule(
        &mut self,
        object: ObjectId,
        schedule: &Schedule,
    ) -> Result<Vec<ProcSet>> {
        let mut trajectory = Vec::new();
        for request in schedule.iter() {
            self.execute_request(object, request)?;
            trajectory.push(self.holders()?);
        }
        Ok(trajectory)
    }

    /// The double-poll quiescence barrier (see the module docs).
    fn quiesce(&mut self) -> Result<()> {
        let mut prev: Option<Vec<(u64, u64)>> = None;
        for polls in 0..POLL_BUDGET {
            let mut counts = Vec::with_capacity(self.n);
            for conn in &mut self.conns {
                conn.writer().write_frame(&WireFrame::Poll)?;
            }
            for conn in &mut self.conns {
                match conn.read_frame()? {
                    Some(WireFrame::PollReply { sent, received }) => {
                        counts.push((sent, received));
                    }
                    Some(other) => {
                        return Err(DomaError::Net(format!("expected PollReply, got {other:?}")))
                    }
                    None => return Err(DomaError::Net("node closed connection mid-poll".into())),
                }
            }
            let sent: u64 = counts.iter().map(|(s, _)| s).sum();
            let received: u64 = counts.iter().map(|(_, r)| r).sum();
            if sent == received && prev.as_ref() == Some(&counts) {
                return Ok(());
            }
            prev = Some(counts);
            if polls > 2 {
                // Frames are in kernel buffers, not CPU queues — yield
                // rather than hammering the sockets.
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        }
        Err(DomaError::ClusterStalled { polls: POLL_BUDGET })
    }

    /// Collects per-node tallies with a `Report` round.
    pub fn node_reports(&mut self) -> Result<Vec<NodeReport>> {
        let mut reports = Vec::with_capacity(self.n);
        for conn in &mut self.conns {
            conn.writer().write_frame(&WireFrame::Report)?;
        }
        for conn in &mut self.conns {
            match conn.read_frame()? {
                Some(WireFrame::ReportReply {
                    holds,
                    io,
                    control_sent,
                    data_sent,
                    reads,
                    latency,
                    errors,
                }) => reports.push(NodeReport {
                    holds,
                    io,
                    control_sent,
                    data_sent,
                    reads,
                    latency,
                    errors,
                }),
                Some(other) => {
                    return Err(DomaError::Net(format!(
                        "expected ReportReply, got {other:?}"
                    )))
                }
                None => return Err(DomaError::Net("node closed connection mid-report".into())),
            }
        }
        Ok(reports)
    }

    /// The nodes currently holding a valid replica.
    pub fn holders(&mut self) -> Result<ProcSet> {
        let mut holders = ProcSet::EMPTY;
        for (i, r) in self.node_reports()?.iter().enumerate() {
            if r.holds {
                holders.insert(ProcessorId::new(i));
            }
        }
        Ok(holders)
    }

    /// Aggregate tallies, shaped like the sim twin's report.
    pub fn report(&mut self) -> Result<ClusterReport> {
        let nodes = self.node_reports()?;
        let mut holders = ProcSet::EMPTY;
        let (mut control, mut data, mut io, mut reads, mut errors) = (0u64, 0u64, 0u64, 0u64, 0u64);
        for (i, r) in nodes.iter().enumerate() {
            if r.holds {
                holders.insert(ProcessorId::new(i));
            }
            control += r.control_sent;
            data += r.data_sent;
            io += r.io;
            reads += r.reads;
            errors += r.errors;
        }
        Ok(ClusterReport {
            cost: CostVector::new(control, data, io),
            final_holders: holders,
            reads_completed: reads,
            errors,
            nodes,
        })
    }

    /// Stops every node, joins their threads (surfacing any event-loop
    /// error), and removes the UDS directory.
    pub fn shutdown(mut self) -> Result<()> {
        let mut first_err = None;
        for conn in &mut self.conns {
            if let Err(e) = conn.writer().write_frame(&WireFrame::Shutdown) {
                first_err.get_or_insert(e);
            }
        }
        drop(self.conns);
        for handle in self.handles {
            if let Err(e) = handle.join() {
                first_err.get_or_insert(e);
            }
        }
        if let Some(dir) = self.uds_dir.take() {
            let _ = std::fs::remove_dir_all(dir);
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

//! Per-node runtime: socket plumbing, the connection handshake, and the
//! node event loop.
//!
//! Topology: every node binds a listener; the cluster driver (and each
//! peer) opens one outgoing connection per target and introduces itself
//! with a [`WireFrame::Hello`]. Inbound connections get a dedicated
//! reader thread that parses frames with the incremental
//! [`codec::Decoder`] and forwards them into the node's single inbox
//! channel, so the node's event loop handles messages strictly one at a
//! time — the same per-node atomicity the sim engine guarantees. Replies
//! to the driver travel back on the driver's own connection (cloned
//! writer half); node-to-node protocol messages travel on the sender's
//! outgoing connections.
//!
//! This module (with [`crate::cluster`]) is the workspace's only sanctioned
//! home for `std::net` / Unix sockets and for thread spawning outside the
//! sharding/bench modules — both confined by doma-lint rules
//! (`net-containment`, `thread-containment`).

use crate::codec::{self, Decoder, WireFrame, DRIVER_ID};
use crate::NetTransport;
use doma_core::{DomaError, Result};
use doma_protocol::DomNode;
use doma_sim::NodeId;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::{
    atomic::{AtomicBool, Ordering},
    Arc,
};

/// Which socket family a cluster runs over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// TCP over the loopback interface.
    Tcp,
    /// Unix domain sockets in a per-cluster temp directory.
    Uds,
}

impl TransportKind {
    /// Parses the `domactl` flag value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "tcp" => Some(TransportKind::Tcp),
            "uds" => Some(TransportKind::Uds),
            _ => None,
        }
    }
}

/// A connectable endpoint of one node.
#[derive(Debug, Clone)]
pub enum Addr {
    /// TCP loopback address with its bound port.
    Tcp(std::net::SocketAddr),
    /// Unix-domain socket path.
    Uds(PathBuf),
}

pub(crate) fn net_err(what: &str, e: std::io::Error) -> DomaError {
    DomaError::Net(format!("{what}: {e}"))
}

/// One bidirectional stream, TCP or UDS.
pub(crate) enum Conn {
    Tcp(TcpStream),
    Uds(UnixStream),
}

impl Conn {
    pub(crate) fn connect(addr: &Addr) -> std::io::Result<Conn> {
        match addr {
            Addr::Tcp(a) => TcpStream::connect(a).map(Conn::Tcp),
            Addr::Uds(p) => UnixStream::connect(p).map(Conn::Uds),
        }
    }

    /// Connects with retry: listeners are bound before anything connects,
    /// but a refused/flaky connect during startup is retried briefly
    /// rather than failing the whole cluster.
    pub(crate) fn connect_retry(addr: &Addr) -> Result<Conn> {
        let mut last = None;
        for _ in 0..500 {
            match Conn::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    last = Some(e);
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            }
        }
        Err(net_err(
            "connect",
            last.unwrap_or_else(|| std::io::Error::other("no attempt made")),
        ))
    }

    pub(crate) fn try_clone(&self) -> Result<Conn> {
        match self {
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
            Conn::Uds(s) => s.try_clone().map(Conn::Uds),
        }
        .map_err(|e| net_err("clone stream", e))
    }

    pub(crate) fn read_some(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Uds(s) => s.read(buf),
        }
    }

    pub(crate) fn write_frame(&mut self, frame: &WireFrame) -> Result<()> {
        let bytes = codec::encode_frame(frame);
        match self {
            Conn::Tcp(s) => s.write_all(&bytes),
            Conn::Uds(s) => s.write_all(&bytes),
        }
        .map_err(|e| net_err("write frame", e))
    }
}

/// A connection plus its incremental decoder: blocking frame reads.
pub(crate) struct FrameConn {
    conn: Conn,
    dec: Decoder,
}

impl FrameConn {
    pub(crate) fn new(conn: Conn) -> Self {
        FrameConn {
            conn,
            dec: Decoder::new(),
        }
    }

    pub(crate) fn writer(&mut self) -> &mut Conn {
        &mut self.conn
    }

    /// Blocks until one complete frame arrives; `Ok(None)` on clean EOF.
    pub(crate) fn read_frame(&mut self) -> Result<Option<WireFrame>> {
        let mut buf = [0u8; 4096];
        loop {
            if let Some(body) = self.dec.next_frame()? {
                return Ok(Some(codec::decode_frame(&body)?));
            }
            let n = self
                .conn
                .read_some(&mut buf)
                .map_err(|e| net_err("read frame", e))?;
            if n == 0 {
                if self.dec.buffered() > 0 {
                    return Err(DomaError::WireCorrupt {
                        context: "EOF inside a frame",
                    });
                }
                return Ok(None);
            }
            self.dec.feed(&buf[..n]);
        }
    }
}

/// One node's listening socket.
pub(crate) enum Listener {
    Tcp(TcpListener),
    Uds(UnixListener),
}

impl Listener {
    /// Binds a fresh endpoint for node `index`: an ephemeral loopback
    /// port, or `node-<index>.sock` under `uds_dir`.
    pub(crate) fn bind(
        kind: TransportKind,
        index: usize,
        uds_dir: &std::path::Path,
    ) -> Result<(Listener, Addr)> {
        match kind {
            TransportKind::Tcp => {
                let l = TcpListener::bind(("127.0.0.1", 0)).map_err(|e| net_err("bind tcp", e))?;
                let addr = l.local_addr().map_err(|e| net_err("local addr", e))?;
                Ok((Listener::Tcp(l), Addr::Tcp(addr)))
            }
            TransportKind::Uds => {
                let path = uds_dir.join(format!("node-{index}.sock"));
                let l = UnixListener::bind(&path).map_err(|e| net_err("bind uds", e))?;
                Ok((Listener::Uds(l), Addr::Uds(path)))
            }
        }
    }

    fn accept(&self) -> std::io::Result<Conn> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
            Listener::Uds(l) => l.accept().map(|(s, _)| Conn::Uds(s)),
        }
    }
}

/// What reader threads push into a node's inbox.
enum NodeEvent {
    /// A decoded frame from any inbound connection.
    Frame(WireFrame),
    /// The writer half of the driver's connection (sent once, right
    /// after the driver's `Hello`): replies travel back on it.
    DriverConn(Box<Conn>),
}

/// Everything a node thread needs to run.
pub(crate) struct NodeSetup {
    pub id: usize,
    pub node: DomNode,
    pub listener: Listener,
    /// `(node index, address)` of every *other* node.
    pub peers: Vec<(usize, Addr)>,
    /// This node's own address — used to unblock the acceptor on exit.
    pub self_addr: Addr,
}

/// A handle on a spawned node thread.
pub(crate) struct NodeHandle {
    join: std::thread::JoinHandle<Result<()>>,
}

impl NodeHandle {
    /// Joins the node thread, surfacing its event-loop error if any.
    pub(crate) fn join(self) -> Result<()> {
        match self.join.join() {
            Ok(r) => r,
            Err(_) => Err(DomaError::Net("node thread panicked".into())),
        }
    }
}

/// Spawns the acceptor for one node: each inbound connection gets a
/// reader thread that performs the `Hello` handshake and forwards frames
/// to `tx`. `stop` + a dummy self-connection unblock the accept loop at
/// shutdown.
fn spawn_acceptor(listener: Listener, tx: mpsc::Sender<NodeEvent>, stop: Arc<AtomicBool>) {
    std::thread::spawn(move || {
        loop {
            let Ok(conn) = listener.accept() else { return };
            if stop.load(Ordering::SeqCst) {
                return;
            }
            let tx = tx.clone();
            std::thread::spawn(move || {
                let mut fc = FrameConn::new(conn);
                // Handshake: the first frame must identify the peer.
                let hello = match fc.read_frame() {
                    Ok(Some(WireFrame::Hello { node })) => node,
                    _ => return,
                };
                if hello == DRIVER_ID {
                    let Ok(writer) = fc.conn.try_clone() else {
                        return;
                    };
                    if tx.send(NodeEvent::DriverConn(Box::new(writer))).is_err() {
                        return;
                    }
                }
                while let Ok(Some(frame)) = fc.read_frame() {
                    if tx.send(NodeEvent::Frame(frame)).is_err() {
                        return;
                    }
                }
            });
        }
    });
}

/// Spawns one protocol node: acceptor + event loop. Returns once the
/// node's listener is live and its outgoing mesh connections are being
/// established (the event loop runs until a `Shutdown` frame).
pub(crate) fn spawn_node(setup: NodeSetup) -> NodeHandle {
    let join = std::thread::spawn(move || node_main(setup));
    NodeHandle { join }
}

fn node_main(setup: NodeSetup) -> Result<()> {
    let NodeSetup {
        id,
        mut node,
        listener,
        peers,
        self_addr,
    } = setup;
    let (tx, rx) = mpsc::channel::<NodeEvent>();
    let stop = Arc::new(AtomicBool::new(false));
    spawn_acceptor(listener, tx, stop.clone());

    // Full mesh: one outgoing connection per peer, introduced by Hello.
    // Every node's listener is bound before any node thread starts, so
    // these connects succeed (with retry absorbing scheduler noise).
    let max_peer = peers.iter().map(|(i, _)| *i).max().unwrap_or(0);
    let mut out: Vec<Option<Conn>> = (0..=max_peer).map(|_| None).collect();
    for (peer, addr) in &peers {
        let mut conn = Conn::connect_retry(addr)?;
        conn.write_frame(&WireFrame::Hello { node: id as u64 })?;
        out[*peer] = Some(conn);
    }

    let mut transport = NetTransport::new();
    let mut driver: Option<Conn> = None;
    let mut received: u64 = 0;

    while let Ok(event) = rx.recv() {
        match event {
            NodeEvent::DriverConn(conn) => driver = Some(*conn),
            NodeEvent::Frame(WireFrame::Client { msg }) => {
                // Locally injected request: arrives "from" the node
                // itself, exactly like the sim engine's inject.
                transport.advance();
                node.deliver(&mut transport, NodeId(id), msg);
                flush(id, &mut transport, &mut out)?;
            }
            NodeEvent::Frame(WireFrame::Peer { from, msg, .. }) => {
                received += 1;
                transport.advance();
                node.deliver(&mut transport, NodeId(from as usize), msg);
                flush(id, &mut transport, &mut out)?;
            }
            NodeEvent::Frame(WireFrame::Poll) => {
                let reply = WireFrame::PollReply {
                    sent: transport.control_sent() + transport.data_sent(),
                    received,
                };
                reply_driver(&mut driver, &reply)?;
            }
            NodeEvent::Frame(WireFrame::Report) => {
                let (reads, latency) = node.read_metrics();
                let reply = WireFrame::ReportReply {
                    holds: node.holds_valid(),
                    io: node.io_stats().total(),
                    control_sent: transport.control_sent(),
                    data_sent: transport.data_sent(),
                    reads,
                    latency,
                    errors: node.protocol_errors().len() as u64,
                };
                reply_driver(&mut driver, &reply)?;
            }
            NodeEvent::Frame(WireFrame::Shutdown) => break,
            // Hello frames are consumed by reader threads; reply frames
            // are never addressed to a node. Ignore strays.
            NodeEvent::Frame(_) => {}
        }
    }

    // Unblock the acceptor (it is parked in accept()) so its thread
    // exits: flag it, then poke our own listener with a dummy connect.
    stop.store(true, Ordering::SeqCst);
    let _ = Conn::connect(&self_addr);
    Ok(())
}

/// Writes a reply on the driver connection (a node never needs to reply
/// before the driver has connected — its frames are what we reply to).
fn reply_driver(driver: &mut Option<Conn>, frame: &WireFrame) -> Result<()> {
    match driver {
        Some(conn) => conn.write_frame(frame),
        None => Err(DomaError::Net(
            "reply with no driver connection registered".into(),
        )),
    }
}

/// Drains the transport's outbox onto the peer sockets. Called after
/// every `deliver` — the obs layer has read `pending_sends` by then.
fn flush(id: usize, transport: &mut NetTransport, out: &mut [Option<Conn>]) -> Result<()> {
    for (to, kind, msg) in transport.drain() {
        let conn = out
            .get_mut(to.0)
            .and_then(|c| c.as_mut())
            .ok_or_else(|| DomaError::Net(format!("node {id} has no connection to {to:?}")))?;
        conn.write_frame(&WireFrame::Peer {
            from: id as u64,
            kind,
            msg,
        })?;
    }
    Ok(())
}

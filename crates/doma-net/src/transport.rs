//! The socket-side [`Transport`] implementation.

use doma_protocol::{DomMsg, Transport};
use doma_sim::{MsgKind, NodeId, SimTime};

/// The [`Transport`] a protocol node runs against in the real runtime.
///
/// Sends are buffered exactly like the sim engine's [`doma_sim::Context`]
/// buffers them: the node's event loop calls
/// [`doma_protocol::DomNode::deliver`], lets the observability layer read
/// [`Transport::pending_sends`], and only then [`NetTransport::drain`]s
/// the buffer onto the peer sockets. Time is a logical per-node delivery
/// tick — it timestamps latency samples, never drives protocol decisions
/// (see the trait docs).
#[derive(Debug, Default)]
pub struct NetTransport {
    tick: u64,
    outbox: Vec<(NodeId, MsgKind, DomMsg)>,
    control_sent: u64,
    data_sent: u64,
}

impl NetTransport {
    /// A fresh transport at tick 0 with an empty outbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the logical clock by one delivery tick. The event loop
    /// calls this once per inbound message, before delivering it.
    pub fn advance(&mut self) {
        self.tick += 1;
    }

    /// Takes the buffered sends, tallying them per pricing class. Call
    /// *after* [`doma_protocol::DomNode::deliver`] returns — the obs
    /// layer reads the buffer during delivery.
    pub fn drain(&mut self) -> Vec<(NodeId, MsgKind, DomMsg)> {
        for (_, kind, _) in &self.outbox {
            match kind {
                MsgKind::Control => self.control_sent += 1,
                MsgKind::Data => self.data_sent += 1,
            }
        }
        std::mem::take(&mut self.outbox)
    }

    /// Control messages drained so far (mirrors the sim engine's
    /// `NetStats::control_sent`).
    pub fn control_sent(&self) -> u64 {
        self.control_sent
    }

    /// Data messages drained so far.
    pub fn data_sent(&self) -> u64 {
        self.data_sent
    }
}

impl Transport for NetTransport {
    fn now(&self) -> SimTime {
        SimTime(self.tick)
    }

    fn send(&mut self, to: NodeId, kind: MsgKind, msg: DomMsg) {
        self.outbox.push((to, kind, msg));
    }

    fn pending_sends(&self) -> &[(NodeId, MsgKind, DomMsg)] {
        &self.outbox
    }

    fn set_timer(&mut self, _delay: u64, _token: u64) {
        // No scheduler: the real runtime executes failure-free workloads
        // only, so the failover layer's detection timers never matter.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doma_core::ObjectId;

    #[test]
    fn drain_tallies_by_kind_and_clears() {
        let mut t = NetTransport::new();
        t.advance();
        assert_eq!(Transport::now(&t), SimTime(1));
        t.send(
            NodeId(1),
            MsgKind::Control,
            DomMsg::CatchUp {
                object: ObjectId(0),
            },
        );
        t.send(
            NodeId(2),
            MsgKind::Data,
            DomMsg::ObjData {
                object: ObjectId(0),
                version: doma_storage::Version(1),
                payload: vec![1],
                save: false,
                round: 0,
            },
        );
        assert_eq!(t.pending_sends().len(), 2);
        let drained = t.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!((t.control_sent(), t.data_sent()), (1, 1));
        assert!(t.pending_sends().is_empty());
    }
}

//! # doma-net
//!
//! The real-runtime twin of the deterministic simulator: SA/DA protocol
//! nodes running over actual sockets (TCP on loopback, or Unix domain
//! sockets), exchanging the same [`doma_protocol::DomMsg`]s through a
//! length-prefixed wire codec instead of the sim engine's event queue.
//!
//! The crate is deliberately thin — all protocol logic stays in
//! `doma-protocol` behind the [`doma_protocol::Transport`] trait, and all
//! request planning in [`doma_protocol::ClientPlanner`]. What lives here:
//!
//! * [`codec`] — the wire format: `u32`-LE length prefix, tagged bodies,
//!   typed [`doma_core::DomaError`]s for truncation and corruption, an
//!   incremental [`codec::Decoder`] for split reads. Never panics on
//!   hostile bytes.
//! * [`NetTransport`] — the socket-side [`doma_protocol::Transport`]
//!   impl: buffered sends, a logical per-node delivery tick for
//!   timestamps, per-class send counters.
//! * [`runtime`] — per-node event loop: a listener + per-connection
//!   reader threads feeding one inbox, full-mesh outgoing connections
//!   with connect-retry and a node-id handshake.
//! * [`Cluster`] — the loopback cluster driver: spawns N node threads,
//!   plans and injects client requests, reaches quiescence with a
//!   double-poll barrier, and collects per-node tallies. Its results are
//!   cross-checked against the sim twin by `domactl cluster`.
//!
//! Failure injection is *not* supported here — the real runtime executes
//! healthy, closed-loop workloads only (the fault harness and model
//! checker live on the deterministic side, where interleavings can be
//! controlled and replayed). The cluster driver enforces this.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod cluster;
pub mod codec;
pub mod runtime;
mod transport;

pub use cluster::{Cluster, ClusterReport, NodeReport};
pub use runtime::TransportKind;
pub use transport::NetTransport;

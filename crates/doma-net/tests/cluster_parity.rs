//! The socket cluster against its deterministic twin: same planner, same
//! schedule, same seed of truth — trajectories and cost totals must be
//! identical. This is the core cross-check the `domactl cluster` command
//! builds on.

use doma_core::{DomaError, ObjectId, ProcSet, ProcessorId, Schedule};
use doma_net::{Cluster, TransportKind};
use doma_protocol::{ProtocolConfig, ProtocolSim};
use std::collections::BTreeMap;

fn pair(a: u8, b: u8) -> ProcSet {
    let mut s = ProcSet::EMPTY;
    s.insert(ProcessorId::new(a as usize));
    s.insert(ProcessorId::new(b as usize));
    s
}

/// Boots a cluster or skips the test with a notice when the sandbox
/// refuses sockets — a missing runtime is not a protocol failure.
fn boot(n: usize, config: ProtocolConfig, kind: TransportKind) -> Option<(Cluster, ObjectId)> {
    let object = ProtocolSim::object();
    let mut configs = BTreeMap::new();
    configs.insert(object, config);
    match Cluster::new(n, configs, Vec::new(), kind, None) {
        Ok(c) => Some((c, object)),
        Err(DomaError::Net(msg)) => {
            eprintln!("skipping cluster parity test: sockets unavailable ({msg})");
            None
        }
        Err(other) => panic!("cluster boot failed: {other}"),
    }
}

/// Runs `schedule` through both twins and asserts identical per-request
/// holder trajectories and identical final cost/holders/read tallies.
fn assert_parity(n: usize, config: ProtocolConfig, kind: TransportKind, schedule: &str) {
    let schedule: Schedule = schedule.parse().unwrap();
    let Some((mut cluster, object)) = boot(n, config.clone(), kind) else {
        return;
    };

    let mut sim = match config {
        ProtocolConfig::Sa { q } => ProtocolSim::new_sa(n, q).unwrap(),
        ProtocolConfig::Da { f, p } => ProtocolSim::new_da(n, f, p).unwrap(),
        ProtocolConfig::Adaptive { .. } => unreachable!("adaptive needs an oracle"),
    };
    let mut sim_trajectory = Vec::new();
    for request in schedule.iter() {
        sim.execute_request_on(object, request).unwrap();
        sim_trajectory.push(sim.valid_holders_of(object));
    }
    let sim_report = sim.report();

    let net_trajectory = cluster.execute_schedule(object, &schedule).unwrap();
    let net_report = cluster.report().unwrap();
    cluster.shutdown().unwrap();

    assert_eq!(
        net_trajectory, sim_trajectory,
        "holder trajectories diverged"
    );
    assert_eq!(net_report.cost, sim_report.cost, "cost totals diverged");
    assert_eq!(net_report.final_holders, sim_report.final_holders);
    assert_eq!(net_report.reads_completed, sim_report.reads_completed);
    assert_eq!(net_report.errors, 0, "cluster recorded protocol errors");
}

const MIXED: &str = "w2 r4 w3 r1 r2 w0 r3 r4 r0 w1 r2 r3";

#[test]
fn sa_uds_matches_sim() {
    assert_parity(
        5,
        ProtocolConfig::Sa { q: pair(0, 1) },
        TransportKind::Uds,
        MIXED,
    );
}

#[test]
fn sa_tcp_matches_sim() {
    assert_parity(
        5,
        ProtocolConfig::Sa { q: pair(1, 3) },
        TransportKind::Tcp,
        MIXED,
    );
}

#[test]
fn da_uds_matches_sim() {
    assert_parity(
        5,
        ProtocolConfig::Da {
            f: ProcSet::EMPTY.with(ProcessorId::new(0)),
            p: ProcessorId::new(1),
        },
        TransportKind::Uds,
        MIXED,
    );
}

#[test]
fn da_tcp_matches_sim() {
    assert_parity(
        3,
        ProtocolConfig::Da {
            f: ProcSet::EMPTY.with(ProcessorId::new(2)),
            p: ProcessorId::new(0),
        },
        TransportKind::Tcp,
        "w0 r1 r2 w2 r0 r1 w1 r2",
    );
}

/// Invalid requests are rejected by the planner before touching the
/// wire, with the same error strings as the sim driver.
#[test]
fn planner_rejects_bad_requests_before_sending() {
    let Some((mut cluster, object)) =
        boot(3, ProtocolConfig::Sa { q: pair(0, 1) }, TransportKind::Uds)
    else {
        return;
    };
    let err = cluster
        .execute_request(object, doma_core::Request::read(ProcessorId::new(9)))
        .unwrap_err();
    assert!(matches!(err, DomaError::InvalidConfig(_)));
    let err = cluster
        .execute_request(ObjectId(99), doma_core::Request::read(ProcessorId::new(0)))
        .unwrap_err();
    assert!(err.to_string().contains("catalog"));
    // The cluster is still healthy after rejected requests.
    cluster
        .execute_request(object, doma_core::Request::write(ProcessorId::new(2)))
        .unwrap();
    cluster.shutdown().unwrap();
}

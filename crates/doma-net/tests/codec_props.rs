//! Property tests hardening the wire codec: roundtrips over random
//! messages, arbitrary read splits, and hostile bytes — typed errors,
//! never a panic.

use doma_core::{DomaError, ObjectId, ProcSet, ProcessorId};
use doma_net::codec::{decode_frame, decode_msg, encode_frame, encode_msg, Decoder, WireFrame};
use doma_protocol::{DomMsg, ReadPlan, WritePlan};
use doma_sim::{MsgKind, NodeId};
use doma_storage::Version;
use doma_testkit::{Rng, TestRng};

fn rand_proc(rng: &mut TestRng) -> ProcessorId {
    ProcessorId::new(rng.gen_range(0..64usize))
}

fn rand_opt_proc(rng: &mut TestRng) -> Option<ProcessorId> {
    rng.gen_bool(0.5).then(|| rand_proc(rng))
}

fn rand_payload(rng: &mut TestRng) -> Vec<u8> {
    let len = rng.gen_range(0..200usize);
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

fn rand_msg(rng: &mut TestRng) -> DomMsg {
    let object = ObjectId(rng.next_u64());
    let version = Version(rng.next_u64());
    match rng.gen_range(0..9u32) {
        0 => DomMsg::ClientRead {
            object,
            plan: rng.gen_bool(0.5).then(|| ReadPlan {
                server: rand_opt_proc(rng),
                saving: rng.gen_bool(0.5),
                fallback: rand_opt_proc(rng),
            }),
        },
        1 => DomMsg::ClientWrite {
            object,
            version,
            payload: rand_payload(rng),
            plan: rng.gen_bool(0.5).then(|| WritePlan {
                exec: ProcSet::from_bits(rng.next_u64()),
                invalidate: ProcSet::from_bits(rng.next_u64()),
                self_invalidate: rng.gen_bool(0.5),
            }),
        },
        2 => DomMsg::ReadReq {
            object,
            saving: rng.gen_bool(0.5),
            round: rng.next_u64(),
        },
        3 => DomMsg::ObjData {
            object,
            version,
            payload: rand_payload(rng),
            save: rng.gen_bool(0.5),
            round: rng.next_u64(),
        },
        4 => DomMsg::NoData {
            object,
            round: rng.next_u64(),
        },
        5 => DomMsg::WriteProp {
            object,
            version,
            payload: rand_payload(rng),
            writer: NodeId(rng.gen_range(0..64usize)),
        },
        6 => DomMsg::Invalidate { object, version },
        7 => DomMsg::ModeChange {
            quorum: rng.gen_bool(0.5),
        },
        _ => DomMsg::CatchUp { object },
    }
}

fn rand_frame(rng: &mut TestRng) -> WireFrame {
    match rng.gen_range(0..8u32) {
        0 => WireFrame::Hello {
            node: rng.next_u64(),
        },
        1 => WireFrame::Peer {
            from: rng.gen_range(0..64u64),
            kind: if rng.gen_bool(0.5) {
                MsgKind::Control
            } else {
                MsgKind::Data
            },
            msg: rand_msg(rng),
        },
        2 => WireFrame::Client { msg: rand_msg(rng) },
        3 => WireFrame::Poll,
        4 => WireFrame::PollReply {
            sent: rng.next_u64(),
            received: rng.next_u64(),
        },
        5 => WireFrame::Report,
        6 => WireFrame::ReportReply {
            holds: rng.gen_bool(0.5),
            io: rng.next_u64(),
            control_sent: rng.next_u64(),
            data_sent: rng.next_u64(),
            reads: rng.next_u64(),
            latency: rng.next_u64(),
            errors: rng.next_u64(),
        },
        _ => WireFrame::Shutdown,
    }
}

#[test]
fn msg_roundtrip_random() {
    let mut rng = TestRng::seed_from_u64(0xC0DEC);
    for _ in 0..2000 {
        let msg = rand_msg(&mut rng);
        let mut buf = Vec::new();
        encode_msg(&mut buf, &msg);
        assert_eq!(decode_msg(&buf).unwrap(), msg, "roundtrip of {msg:?}");
    }
}

#[test]
fn frame_roundtrip_random() {
    let mut rng = TestRng::seed_from_u64(0xF4A3E);
    for _ in 0..2000 {
        let frame = rand_frame(&mut rng);
        let bytes = encode_frame(&frame);
        let mut dec = Decoder::new();
        dec.feed(&bytes);
        let body = dec.next_frame().unwrap().expect("complete frame buffered");
        assert_eq!(decode_frame(&body).unwrap(), frame);
        assert!(dec.next_frame().unwrap().is_none());
    }
}

/// A whole stream of frames, fed to the decoder in random split sizes
/// (including 1-byte dribbles and boundary-straddling chunks), decodes to
/// exactly the original sequence.
#[test]
fn decoder_survives_arbitrary_splits() {
    let mut rng = TestRng::seed_from_u64(0x5EED);
    for _ in 0..50 {
        let frames: Vec<WireFrame> = (0..rng.gen_range(1..20usize))
            .map(|_| rand_frame(&mut rng))
            .collect();
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&encode_frame(f));
        }
        let mut dec = Decoder::new();
        let mut decoded = Vec::new();
        let mut pos = 0;
        while pos < stream.len() {
            let chunk = rng.gen_range(1..64usize).min(stream.len() - pos);
            dec.feed(&stream[pos..pos + chunk]);
            pos += chunk;
            while let Some(body) = dec.next_frame().unwrap() {
                decoded.push(decode_frame(&body).unwrap());
            }
        }
        assert_eq!(decoded, frames);
        assert_eq!(dec.buffered(), 0);
    }
}

/// Every strict prefix of an encoded message is rejected as truncated
/// (typed), and the error reports a sane byte count.
#[test]
fn truncated_payloads_yield_typed_errors() {
    let mut rng = TestRng::seed_from_u64(0x7A11);
    for _ in 0..200 {
        let msg = rand_msg(&mut rng);
        let mut buf = Vec::new();
        encode_msg(&mut buf, &msg);
        for cut in 0..buf.len() {
            match decode_msg(&buf[..cut]) {
                Err(DomaError::WireTruncated { needed, have }) => {
                    assert!(
                        have < needed,
                        "truncation at {cut}: needed {needed}, have {have}"
                    );
                }
                Err(DomaError::WireCorrupt { .. }) => {
                    // A cut can also land inside a length field and make
                    // it structurally invalid — typed either way.
                }
                Err(other) => panic!("unexpected error kind {other:?}"),
                Ok(decoded) => panic!("prefix of {msg:?} decoded as {decoded:?}"),
            }
        }
    }
}

/// Corrupting the length prefix never panics: oversized lengths are
/// corruption, undersized ones surface as truncation/corruption of the
/// frame body.
#[test]
fn corrupt_length_prefix_is_rejected() {
    let frame = WireFrame::Client {
        msg: DomMsg::CatchUp {
            object: ObjectId(5),
        },
    };
    let good = encode_frame(&frame);

    // Absurd length: typed corruption from the decoder.
    let mut oversized = good.clone();
    oversized[..4].copy_from_slice(&u32::MAX.to_le_bytes());
    let mut dec = Decoder::new();
    dec.feed(&oversized);
    assert!(matches!(
        dec.next_frame(),
        Err(DomaError::WireCorrupt {
            context: "frame length prefix"
        })
    ));

    // Short length: the truncated body fails typed, and the leftover
    // bytes then fail as a garbage frame — never a panic.
    let mut short = good.clone();
    let body_len = (good.len() - 4) as u32;
    short[..4].copy_from_slice(&(body_len - 3).to_le_bytes());
    let mut dec = Decoder::new();
    dec.feed(&short);
    let body = dec.next_frame().unwrap().expect("short frame extracted");
    assert!(decode_frame(&body).is_err());
}

/// Fuzz: random bodies (and random mutations of valid bodies) decode to
/// a typed result — the codec never panics on hostile bytes.
#[test]
fn random_bytes_never_panic() {
    let mut rng = TestRng::seed_from_u64(0xBADBEEF);
    for _ in 0..3000 {
        let len = rng.gen_range(0..300usize);
        let junk: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let _ = decode_msg(&junk);
        let _ = decode_frame(&junk);
    }
    for _ in 0..2000 {
        let frame = rand_frame(&mut rng);
        let mut bytes = encode_frame(&frame);
        if bytes.len() > 4 {
            let idx = rng.gen_range(4..bytes.len());
            bytes[idx] ^= 1 << rng.gen_range(0..8u32);
            let mut dec = Decoder::new();
            dec.feed(&bytes);
            if let Ok(Some(body)) = dec.next_frame() {
                // Either it still decodes (the flipped bit was in a
                // payload byte) or it fails typed; both are fine.
                let _ = decode_frame(&body);
            }
        }
    }
}

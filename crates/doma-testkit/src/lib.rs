//! # doma-testkit
//!
//! Hermetic correctness tooling for the workspace: everything the tests,
//! workloads and benches need from `rand`, `proptest` and `criterion`,
//! reimplemented in-tree with **zero registry dependencies**, so
//! `cargo build --offline && cargo test --offline` works from a clean
//! checkout with an empty cargo registry cache.
//!
//! * [`rng`] — deterministic PRNG (SplitMix64 + xoshiro256++) with the
//!   distribution helpers the repository uses: uniform ranges, Bernoulli,
//!   Zipf, shuffle, choose. Same seed ⇒ same stream, on every platform.
//! * [`property`] — a shrinking property-test harness: the [`property!`]
//!   macro, `Gen` combinators with integer/vector shrinking, and seed
//!   replay printed on failure (`DOMA_PROP_SEED` / `DOMA_PROP_CASE`).
//! * [`bench`] — a micro-benchmark harness with warmup, iteration
//!   calibration and JSON output, driving every `[[bench]]` target via
//!   [`bench_main!`].
//! * [`replay`] — shared seed plumbing: `DOMA_*_SEED` parsing and the
//!   replay-line conventions used by both the property harness and the
//!   fault-injection torture driver (`DOMA_FAULT_SEED`).
//!
//! Determinism is the design center: the paper's adversarial lower-bound
//! constructions (and the regressions they guard) are only useful if a
//! failing input can be replayed bit-for-bit.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bench;
pub mod property;
pub mod replay;
pub mod rng;

pub use rng::{Rng, TestRng};

//! A dependency-free micro-benchmark harness.
//!
//! Replaces criterion for the workspace's `[[bench]]` targets (which set
//! `harness = false`). Each bench binary declares a function taking
//! `&mut Bench` and wires it up with [`bench_main!`]:
//!
//! ```ignore
//! use doma_testkit::bench::{Bench, BenchId};
//!
//! fn bench(c: &mut Bench) {
//!     let mut group = c.group("cost_engine");
//!     group.throughput_elements(1_000);
//!     group.bench_function("run_sa", |b| b.iter(|| expensive()));
//!     group.finish();
//! }
//!
//! doma_testkit::bench_main!(bench);
//! ```
//!
//! Measurement protocol per benchmark:
//!
//! 1. **Warmup + calibration** — the closure runs repeatedly, doubling the
//!    iteration count until a batch takes ≥ 2 ms; the per-sample iteration
//!    count is then chosen so one sample takes ≈ 10 ms.
//! 2. **Sampling** — `sample_size` timed samples (default 20) record the
//!    mean nanoseconds per iteration each.
//! 3. **Reporting** — one human line per benchmark (median ± deviation,
//!    plus elements/second when a throughput is set), and a JSON report
//!    written at exit for machine consumption.
//!
//! CLI (all flags optional; unknown flags are ignored so cargo's own
//! arguments pass through):
//!
//! * `<substring>` — run only benchmarks whose `group/name` matches.
//! * `--json <path>` — JSON report path (default
//!   `target/doma-bench/<binary>.json`; `DOMA_BENCH_JSON` also works).
//! * `--sample-size <n>` — override every group's sample count.
//! * `--quick` (or `DOMA_BENCH_QUICK=1`) — single sample, minimal iters.
//! * `--test` — passed by `cargo test`: smoke-run each benchmark once and
//!   skip the JSON report.

use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct Record {
    /// Group name (one group per bench binary section).
    pub group: String,
    /// Benchmark id within the group (`name` or `name/param`).
    pub name: String,
    /// Samples taken.
    pub samples: usize,
    /// Timed iterations per sample.
    pub iters_per_sample: u64,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Sample standard deviation of the per-sample means (ns).
    pub stddev_ns: f64,
    /// Fastest sample (ns/iter).
    pub min_ns: f64,
    /// Slowest sample (ns/iter).
    pub max_ns: f64,
    /// Declared elements processed per iteration, if any.
    pub throughput_elems: Option<u64>,
}

impl Record {
    /// Elements per second implied by the median, if a throughput is set.
    pub fn elems_per_sec(&self) -> Option<f64> {
        self.throughput_elems
            .map(|e| e as f64 / (self.median_ns * 1e-9))
    }
}

/// Identifies a benchmark: a function name with an optional parameter
/// (rendered `name/param`).
#[derive(Debug, Clone)]
pub struct BenchId {
    name: String,
    param: Option<String>,
}

impl BenchId {
    /// A parameterized id, rendered `name/param`.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchId {
            name: name.into(),
            param: Some(param.to_string()),
        }
    }

    fn render(&self) -> String {
        match &self.param {
            Some(p) => format!("{}/{}", self.name, p),
            None => self.name.clone(),
        }
    }
}

impl From<&str> for BenchId {
    fn from(name: &str) -> Self {
        BenchId {
            name: name.to_string(),
            param: None,
        }
    }
}

impl From<String> for BenchId {
    fn from(name: String) -> Self {
        BenchId { name, param: None }
    }
}

/// The top-level harness: parses the CLI, owns the results, writes the
/// JSON report.
#[derive(Debug)]
pub struct Bench {
    filter: Option<String>,
    json_path: Option<PathBuf>,
    sample_size_override: Option<usize>,
    quick: bool,
    test_mode: bool,
    results: Vec<Record>,
    attachments: Vec<(String, String)>,
}

impl Bench {
    /// Builds the harness from `std::env::args` (see module docs for the
    /// CLI) and the `DOMA_BENCH_*` environment variables.
    pub fn from_args() -> Self {
        let mut filter = None;
        let mut json_path = std::env::var_os("DOMA_BENCH_JSON").map(PathBuf::from);
        let mut sample_size_override = None;
        let mut quick = std::env::var_os("DOMA_BENCH_QUICK").is_some();
        let mut test_mode = false;

        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--json" => json_path = args.next().map(PathBuf::from),
                "--sample-size" => sample_size_override = args.next().and_then(|s| s.parse().ok()),
                "--quick" => quick = true,
                "--test" => test_mode = true,
                "--bench" => {}               // passed by `cargo bench`
                s if s.starts_with('-') => {} // ignore unknown flags
                s => filter = Some(s.to_string()),
            }
        }
        Bench {
            filter,
            json_path,
            sample_size_override,
            quick,
            test_mode,
            results: Vec::new(),
            attachments: Vec::new(),
        }
    }

    /// A fresh harness that measures nothing beyond a single smoke
    /// iteration — what `--test` mode uses; also handy in unit tests.
    pub fn smoke() -> Self {
        Bench {
            filter: None,
            json_path: None,
            sample_size_override: None,
            quick: true,
            test_mode: true,
            results: Vec::new(),
            attachments: Vec::new(),
        }
    }

    /// Opens a named benchmark group.
    pub fn group(&mut self, name: impl Into<String>) -> Group<'_> {
        Group {
            bench: self,
            name: name.into(),
            sample_size: 20,
            throughput_elems: None,
        }
    }

    /// All records measured so far.
    pub fn records(&self) -> &[Record] {
        &self.results
    }

    /// Attaches a named pre-rendered JSON value to the report. The value
    /// is inlined verbatim into the report array as
    /// `{"attachment": name, "payload": <raw_json>}`, so it must already
    /// be valid JSON — e.g. a `doma-obs` snapshot. The array stays flat:
    /// record consumers that filter on `"group"` skip attachments
    /// untouched.
    pub fn attach_json(&mut self, name: impl Into<String>, raw_json: impl Into<String>) {
        self.attachments.push((name.into(), raw_json.into()));
    }

    /// Attachments added so far (name, raw JSON).
    pub fn attachments(&self) -> &[(String, String)] {
        &self.attachments
    }

    /// Prints the summary and writes the JSON report. Call once, last.
    pub fn finish(self) {
        if self.test_mode {
            return; // smoke mode: compile-and-run coverage only
        }
        let path = self.json_path.clone().unwrap_or_else(default_json_path);
        match write_json(&path, &self.results, &self.attachments) {
            Ok(()) => println!("\n{} benchmarks -> {}", self.results.len(), path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }

    fn matches(&self, full_name: &str) -> bool {
        match self.filter.as_deref() {
            Some(f) => full_name.contains(f),
            None => true,
        }
    }
}

/// A named group of benchmarks sharing sample-size and throughput
/// settings.
pub struct Group<'a> {
    bench: &'a mut Bench,
    name: String,
    sample_size: usize,
    throughput_elems: Option<u64>,
}

impl Group<'_> {
    /// Sets the number of timed samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares that each iteration processes `elems` elements, enabling
    /// elements/second reporting.
    pub fn throughput_elements(&mut self, elems: u64) -> &mut Self {
        self.throughput_elems = Some(elems);
        self
    }

    /// Measures `f`, which receives a [`Bencher`] and must call
    /// [`Bencher::iter`] exactly once.
    pub fn bench_function(&mut self, id: impl Into<BenchId>, f: impl FnOnce(&mut Bencher)) {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.render());
        if !self.bench.matches(&full) {
            return;
        }
        let samples = self.bench.sample_size_override.unwrap_or(self.sample_size);
        let mut bencher = Bencher {
            samples,
            quick: self.bench.quick || self.bench.test_mode,
            measurement: None,
        };
        f(&mut bencher);
        let Some((sample_ns, iters)) = bencher.measurement else {
            eprintln!("warning: benchmark {full} never called Bencher::iter");
            return;
        };
        let record = summarize(
            &self.name,
            &id.render(),
            sample_ns,
            iters,
            self.throughput_elems,
        );
        if !self.bench.test_mode {
            println!("{}", render_line(&full, &record));
        }
        self.bench.results.push(record);
    }

    /// [`Group::bench_function`] with an explicit input reference —
    /// mirrors the shape criterion's `bench_with_input` had, so call
    /// sites stay one-line diffs.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchId>,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (kept for symmetry; dropping works too).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; [`Bencher::iter`] runs the timed
/// loop.
pub struct Bencher {
    samples: usize,
    quick: bool,
    measurement: Option<(Vec<f64>, u64)>,
}

impl Bencher {
    /// Times `f`, recording nanoseconds per iteration. The return value
    /// is passed through [`black_box`] so the work is not optimized away.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        if self.quick {
            let start = Instant::now();
            black_box(f());
            let ns = start.elapsed().as_nanos() as f64;
            self.measurement = Some((vec![ns.max(1.0)], 1));
            return;
        }

        // Calibrate: double the batch size until a batch takes >= 2 ms,
        // then size samples to ~10 ms each (capped at 2^20 iterations).
        let mut batch: u64 = 1;
        let per_iter_ns = loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            if elapsed >= 2_000_000.0 || batch >= (1 << 20) {
                break (elapsed / batch as f64).max(0.1);
            }
            batch *= 2;
        };
        let iters = ((10_000_000.0 / per_iter_ns) as u64).clamp(1, 1 << 20);

        let mut sample_ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            sample_ns.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.measurement = Some((sample_ns, iters));
    }
}

fn summarize(
    group: &str,
    name: &str,
    mut sample_ns: Vec<f64>,
    iters: u64,
    throughput_elems: Option<u64>,
) -> Record {
    sample_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let n = sample_ns.len();
    let mean = sample_ns.iter().sum::<f64>() / n as f64;
    let median = if n % 2 == 1 {
        sample_ns[n / 2]
    } else {
        (sample_ns[n / 2 - 1] + sample_ns[n / 2]) / 2.0
    };
    let var = if n > 1 {
        sample_ns.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1) as f64
    } else {
        0.0
    };
    Record {
        group: group.to_string(),
        name: name.to_string(),
        samples: n,
        iters_per_sample: iters,
        mean_ns: mean,
        median_ns: median,
        stddev_ns: var.sqrt(),
        min_ns: sample_ns[0],
        max_ns: sample_ns[n - 1],
        throughput_elems,
    }
}

/// Renders nanoseconds human-readably (`ns`, `µs`, `ms`, `s`).
pub fn human_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn render_line(full: &str, r: &Record) -> String {
    let mut line = format!(
        "{full:<44} {:>12}  ±{:<10} ({} samples × {} iters)",
        human_ns(r.median_ns),
        human_ns(r.stddev_ns),
        r.samples,
        r.iters_per_sample
    );
    if let Some(eps) = r.elems_per_sec() {
        line.push_str(&format!("  {:.2} Melem/s", eps / 1e6));
    }
    line
}

fn default_json_path() -> PathBuf {
    // Prefer the cargo target dir; else walk up from the CWD looking for
    // an existing `target/` (bench binaries run from the package root,
    // which for workspace members is below the shared target dir).
    let base = std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .or_else(|| {
            let mut dir = std::env::current_dir().ok()?;
            for _ in 0..4 {
                if dir.join("target").is_dir() {
                    return Some(dir.join("target"));
                }
                if !dir.pop() {
                    break;
                }
            }
            None
        })
        .unwrap_or_else(|| PathBuf::from("target"));
    let stem = std::env::args()
        .next()
        .map(|a| {
            PathBuf::from(a)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| "bench".to_string())
        })
        .unwrap_or_else(|| "bench".to_string());
    // Cargo suffixes bench binaries with a metadata hash; strip it.
    let stem = match stem.rfind('-') {
        Some(i)
            if stem[i + 1..].len() == 16
                && stem[i + 1..].bytes().all(|b| b.is_ascii_hexdigit()) =>
        {
            stem[..i].to_string()
        }
        _ => stem,
    };
    base.join("doma-bench").join(format!("{stem}.json"))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn write_json(
    path: &std::path::Path,
    records: &[Record],
    attachments: &[(String, String)],
) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"group\": \"{}\", \"name\": \"{}\", \"samples\": {}, \
             \"iters_per_sample\": {}, \"mean_ns\": {:.3}, \"median_ns\": {:.3}, \
             \"stddev_ns\": {:.3}, \"min_ns\": {:.3}, \"max_ns\": {:.3}",
            json_escape(&r.group),
            json_escape(&r.name),
            r.samples,
            r.iters_per_sample,
            r.mean_ns,
            r.median_ns,
            r.stddev_ns,
            r.min_ns,
            r.max_ns,
        ));
        if let Some(e) = r.throughput_elems {
            out.push_str(&format!(", \"throughput_elems\": {e}"));
            if let Some(eps) = r.elems_per_sec() {
                out.push_str(&format!(", \"elems_per_sec\": {eps:.1}"));
            }
        }
        out.push('}');
        if i + 1 < records.len() || !attachments.is_empty() {
            out.push(',');
        }
        out.push('\n');
    }
    for (i, (name, payload)) in attachments.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"attachment\": \"{}\", \"payload\": {payload}}}",
            json_escape(name)
        ));
        if i + 1 < attachments.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    std::fs::write(path, out)
}

/// Declares the `main` of a `harness = false` bench binary: builds a
/// [`Bench`] from the CLI, runs each listed function, writes the report.
#[macro_export]
macro_rules! bench_main {
    ($($func:path),+ $(,)?) => {
        fn main() {
            let mut harness = $crate::bench::Bench::from_args();
            $($func(&mut harness);)+
            harness.finish();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_measures_once_and_records() {
        let mut bench = Bench::smoke();
        let mut calls = 0u32;
        {
            let mut group = bench.group("g");
            group.throughput_elements(100);
            group.bench_function("counted", |b| {
                b.iter(|| {
                    calls += 1;
                    calls
                })
            });
            group.bench_with_input(BenchId::new("param", 42), &7u32, |b, &x| b.iter(|| x * 2));
            group.finish();
        }
        assert_eq!(calls, 1, "smoke mode runs exactly one iteration");
        assert_eq!(bench.records().len(), 2);
        assert_eq!(bench.records()[0].name, "counted");
        assert_eq!(bench.records()[1].name, "param/42");
        assert!(bench.records()[0].elems_per_sec().unwrap() > 0.0);
    }

    #[test]
    fn summarize_computes_order_statistics() {
        let r = summarize("g", "n", vec![3.0, 1.0, 2.0], 10, Some(5));
        assert_eq!(r.median_ns, 2.0);
        assert_eq!(r.min_ns, 1.0);
        assert_eq!(r.max_ns, 3.0);
        assert!((r.mean_ns - 2.0).abs() < 1e-12);
        assert!(r.stddev_ns > 0.9 && r.stddev_ns < 1.1);
    }

    #[test]
    fn json_report_is_valid_enough() {
        let dir = std::env::temp_dir().join("doma-testkit-bench-test");
        let path = dir.join("report.json");
        let records = vec![summarize("grp\"x", "name", vec![1.0, 2.0], 3, None)];
        write_json(&path, &records, &[]).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("[\n"));
        assert!(body.contains("\\\"x\""), "escaped quote: {body}");
        assert!(body.trim_end().ends_with(']'));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn attachments_ride_along_in_the_flat_array() {
        let dir = std::env::temp_dir().join("doma-testkit-bench-test");
        let path = dir.join("attach.json");
        let records = vec![summarize("g", "n", vec![1.0], 1, None)];
        let attachments = vec![("obs".to_string(), "{\"metrics\": []}".to_string())];
        write_json(&path, &records, &attachments).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(
            body.contains("{\"attachment\": \"obs\", \"payload\": {\"metrics\": []}}"),
            "{body}"
        );
        // The record object must now carry a trailing comma before the
        // attachment keeps the array valid.
        assert!(body.matches('{').count() == body.matches('}').count());
        std::fs::remove_file(&path).ok();

        let mut bench = Bench::smoke();
        bench.attach_json("obs", "{}");
        assert_eq!(bench.attachments().len(), 1);
    }

    #[test]
    fn human_ns_scales() {
        assert_eq!(human_ns(12.0), "12.0 ns");
        assert_eq!(human_ns(1_500.0), "1.50 µs");
        assert_eq!(human_ns(2_500_000.0), "2.50 ms");
        assert_eq!(human_ns(3_200_000_000.0), "3.200 s");
    }

    #[test]
    fn filter_matches_substring() {
        let mut bench = Bench::smoke();
        bench.filter = Some("only_this".to_string());
        let mut ran = false;
        {
            let mut group = bench.group("g");
            group.bench_function("only_this_one", |b| {
                b.iter(|| {
                    ran = true;
                })
            });
            group.bench_function("not_that", |b| b.iter(|| ()));
            group.finish();
        }
        assert!(ran);
        assert_eq!(bench.records().len(), 1);
    }
}

//! A minimal shrinking property-test harness.
//!
//! The [`property!`] macro declares `#[test]` functions whose arguments
//! are drawn from [`Gen`] generators. On failure the harness:
//!
//! 1. captures the panic,
//! 2. greedily **shrinks** the failing input (integers toward the range
//!    start, vectors by removing chunks/elements, then shrinking
//!    elements),
//! 3. reports the minimal failing input together with the seed and case
//!    index needed to replay it.
//!
//! Replay a failure deterministically with environment variables:
//!
//! ```text
//! DOMA_PROP_SEED=0x1234 DOMA_PROP_CASE=17 cargo test -p <crate> <test_name>
//! ```
//!
//! `DOMA_PROP_CASES` overrides the number of cases (default 96);
//! `DOMA_PROP_SEED` rebases the whole deterministic case sequence. The
//! default seed is fixed, so CI runs are reproducible by construction.

use crate::rng::{splitmix64, Rng, TestRng};
use std::fmt::Debug;
use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Mutex;

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

/// A value generator with optional shrinking.
///
/// `shrink` returns *candidate simplifications* of a failing value,
/// simplest first; the harness keeps any candidate that still fails and
/// recurses. The trait is object-safe, so heterogeneous generators can be
/// boxed (see [`one_of`]).
pub trait Gen {
    /// The generated type.
    type Value: Clone + Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Candidate simplifications of `v` (may be empty).
    fn shrink(&self, _v: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

impl<G: Gen + ?Sized> Gen for &G {
    type Value = G::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
    fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(v)
    }
}

impl<G: Gen + ?Sized> Gen for Box<G> {
    type Value = G::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
    fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(v)
    }
}

/// Uniform values from a half-open range, shrinking toward the start.
pub fn range<T>(r: Range<T>) -> RangeGen<T> {
    RangeGen { r }
}

/// See [`range`].
#[derive(Debug, Clone)]
pub struct RangeGen<T> {
    r: Range<T>,
}

macro_rules! impl_int_range_gen {
    ($($t:ty),*) => {$(
        impl Gen for RangeGen<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.r.clone())
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                // Classic quickcheck ladder: the range start, then values
                // halving the distance to `v` — simplest first.
                let lo = self.r.start;
                let mut out = Vec::new();
                let mut c = lo;
                while c != *v {
                    out.push(c);
                    let gap = (*v as i128 - c as i128) / 2;
                    if gap == 0 {
                        break;
                    }
                    c = (*v as i128 - gap) as $t;
                }
                out
            }
        }
    )*};
}

impl_int_range_gen!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Gen for RangeGen<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.r.clone())
    }
    fn shrink(&self, v: &f64) -> Vec<f64> {
        let lo = self.r.start;
        let mut out = Vec::new();
        if (*v - lo).abs() > 1e-9 {
            out.push(lo);
            out.push(lo + (*v - lo) / 2.0);
        }
        out
    }
}

/// Uniform booleans; `true` shrinks to `false`.
pub fn bools() -> BoolGen {
    BoolGen
}

/// See [`bools`].
#[derive(Debug, Clone)]
pub struct BoolGen;

impl Gen for BoolGen {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
    fn shrink(&self, v: &bool) -> Vec<bool> {
        if *v {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// Always the same value; never shrinks.
pub fn just<T: Clone + Debug>(value: T) -> JustGen<T> {
    JustGen { value }
}

/// See [`just`].
#[derive(Debug, Clone)]
pub struct JustGen<T> {
    value: T,
}

impl<T: Clone + Debug> Gen for JustGen<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.value.clone()
    }
}

/// Vectors of `elem` values with length drawn from `len` (half-open).
///
/// Shrinking removes the back/front half, then single elements, then
/// shrinks individual elements — the workhorse for minimizing failing
/// schedules and operation sequences.
pub fn vec_in<G: Gen>(elem: G, len: Range<usize>) -> VecGen<G> {
    VecGen { elem, len }
}

/// See [`vec_in`].
#[derive(Debug, Clone)]
pub struct VecGen<G> {
    elem: G,
    len: Range<usize>,
}

impl<G: Gen> Gen for VecGen<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<G::Value> {
        let n = if self.len.start + 1 >= self.len.end {
            self.len.start
        } else {
            rng.gen_range(self.len.clone())
        };
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, v: &Vec<G::Value>) -> Vec<Vec<G::Value>> {
        let min = self.len.start;
        let n = v.len();
        let mut out: Vec<Vec<G::Value>> = Vec::new();
        // Structural shrinks: empty, halves, drop one element.
        if n > min {
            if min == 0 && n > 1 {
                out.push(Vec::new());
            }
            if n >= 2 && n / 2 >= min {
                out.push(v[..n / 2].to_vec());
                out.push(v[n - n / 2..].to_vec());
            }
            for i in 0..n.min(24) {
                let mut shorter = v.clone();
                shorter.remove(i);
                if shorter.len() >= min {
                    out.push(shorter);
                }
            }
        }
        // Element-wise shrinks (bounded so candidate lists stay small).
        for i in 0..n.min(16) {
            for cand in self.elem.shrink(&v[i]).into_iter().take(3) {
                let mut replaced = v.clone();
                replaced[i] = cand;
                out.push(replaced);
            }
        }
        out
    }
}

/// Maps generated values through `f`. Shrinking is lost (the mapping is
/// not invertible); use [`iso`] when an inverse exists.
pub fn map<G: Gen, T, F>(gen: G, f: F) -> MapGen<G, F>
where
    T: Clone + Debug,
    F: Fn(G::Value) -> T,
{
    MapGen { gen, f }
}

/// See [`map`].
pub struct MapGen<G, F> {
    gen: G,
    f: F,
}

impl<G: Gen, T, F> Gen for MapGen<G, F>
where
    T: Clone + Debug,
    F: Fn(G::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.gen.generate(rng))
    }
}

/// Maps through `to` while keeping shrinking alive via the inverse
/// `from` — e.g. `Schedule` ⇄ `Vec<Request>`.
pub fn iso<G: Gen, T, To, From>(gen: G, to: To, from: From) -> IsoGen<G, To, From>
where
    T: Clone + Debug,
    To: Fn(G::Value) -> T,
    From: Fn(&T) -> G::Value,
{
    IsoGen { gen, to, from }
}

/// See [`iso`].
pub struct IsoGen<G, To, From> {
    gen: G,
    to: To,
    from: From,
}

impl<G: Gen, T, To, From> Gen for IsoGen<G, To, From>
where
    T: Clone + Debug,
    To: Fn(G::Value) -> T,
    From: Fn(&T) -> G::Value,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.to)(self.gen.generate(rng))
    }
    fn shrink(&self, v: &T) -> Vec<T> {
        self.gen
            .shrink(&(self.from)(v))
            .into_iter()
            .map(&self.to)
            .collect()
    }
}

/// Joins two generators into a pair generator, shrinking one component
/// at a time. Compose with [`map`]/[`iso`] to build derived values from
/// two independent draws.
pub fn pair<A: Gen, B: Gen>(a: A, b: B) -> PairGen<A, B> {
    PairGen { a, b }
}

/// See [`pair`].
pub struct PairGen<A, B> {
    a: A,
    b: B,
}

impl<A: Gen, B: Gen> Gen for PairGen<A, B> {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.a.generate(rng), self.b.generate(rng))
    }
    fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
        let mut out: Vec<Self::Value> = self
            .a
            .shrink(&v.0)
            .into_iter()
            .map(|a| (a, v.1.clone()))
            .collect();
        out.extend(self.b.shrink(&v.1).into_iter().map(|b| (v.0.clone(), b)));
        out
    }
}

/// Picks one of several same-typed generators uniformly. Values shrink
/// through every branch that proposes candidates.
pub fn one_of<T: Clone + Debug>(gens: Vec<Box<dyn Gen<Value = T>>>) -> OneOfGen<T> {
    assert!(!gens.is_empty(), "one_of needs at least one generator");
    OneOfGen { gens }
}

/// See [`one_of`].
pub struct OneOfGen<T> {
    gens: Vec<Box<dyn Gen<Value = T>>>,
}

impl<T: Clone + Debug> Gen for OneOfGen<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.gens.len());
        self.gens[i].generate(rng)
    }
    fn shrink(&self, v: &T) -> Vec<T> {
        self.gens.iter().flat_map(|g| g.shrink(v)).collect()
    }
}

// ---------------------------------------------------------------------------
// Tuples of generators (one per property argument)
// ---------------------------------------------------------------------------

/// A tuple of generators, one per property argument. Implemented for
/// arities 1–6; used internally by [`property!`].
pub trait GenTuple {
    /// The tuple of generated values.
    type Values: Clone + Debug;
    /// Number of arguments.
    const ARITY: usize;
    /// Draws one value per generator.
    fn generate(&self, rng: &mut TestRng) -> Self::Values;
    /// Shrink candidates varying only argument `which`.
    fn shrink_one(&self, vs: &Self::Values, which: usize) -> Vec<Self::Values>;
}

macro_rules! impl_gen_tuple {
    ($n:expr; $(($G:ident, $v:ident, $i:tt)),+) => {
        impl<$($G: Gen),+> GenTuple for ($($G,)+) {
            type Values = ($($G::Value,)+);
            const ARITY: usize = $n;

            fn generate(&self, rng: &mut TestRng) -> Self::Values {
                ($(self.$i.generate(rng),)+)
            }

            fn shrink_one(&self, vs: &Self::Values, which: usize) -> Vec<Self::Values> {
                let mut out = Vec::new();
                $(
                    if which == $i {
                        for cand in self.$i.shrink(&vs.$i) {
                            let mut next = vs.clone();
                            next.$i = cand;
                            out.push(next);
                        }
                    }
                )+
                out
            }
        }
    };
}

impl_gen_tuple!(1; (G0, v0, 0));
impl_gen_tuple!(2; (G0, v0, 0), (G1, v1, 1));
impl_gen_tuple!(3; (G0, v0, 0), (G1, v1, 1), (G2, v2, 2));
impl_gen_tuple!(4; (G0, v0, 0), (G1, v1, 1), (G2, v2, 2), (G3, v3, 3));
impl_gen_tuple!(5; (G0, v0, 0), (G1, v1, 1), (G2, v2, 2), (G3, v3, 3), (G4, v4, 4));
impl_gen_tuple!(6; (G0, v0, 0), (G1, v1, 1), (G2, v2, 2), (G3, v3, 3), (G4, v4, 4), (G5, v5, 5));

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Panic payload of [`prop_assume!`]: the case is discarded, not failed.
pub struct Discard;

/// Runner configuration; read from the environment by default.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of passing cases required (default 96, `DOMA_PROP_CASES`).
    pub cases: u32,
    /// Base seed of the deterministic case sequence (`DOMA_PROP_SEED`,
    /// decimal or `0x`-hex). Fixed by default so runs are reproducible.
    pub seed: u64,
    /// Replay only this case index (`DOMA_PROP_CASE`).
    pub only_case: Option<u64>,
    /// Shrink-attempt budget per failure.
    pub max_shrink_steps: u32,
}

impl Config {
    /// The default configuration, with environment overrides applied.
    pub fn from_env() -> Self {
        use crate::replay::env_u64;
        let cases = env_u64("DOMA_PROP_CASES").map(|n| n as u32).unwrap_or(96);
        let seed = env_u64("DOMA_PROP_SEED").unwrap_or(0xD0AA_5EED_0000_0001);
        let only_case = env_u64("DOMA_PROP_CASE");
        Config {
            cases,
            seed,
            only_case,
            max_shrink_steps: 2000,
        }
    }

    /// Overrides the case count (used by `#[cases(n)]` in [`property!`]).
    pub fn with_cases(mut self, cases: u32) -> Self {
        self.cases = cases;
        self
    }
}

enum CaseOutcome {
    Pass,
    Discarded,
    Fail(String),
}

fn payload_to_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn run_case<V, F: FnMut(V)>(body: &mut F, vals: V) -> CaseOutcome {
    match panic::catch_unwind(AssertUnwindSafe(|| body(vals))) {
        Ok(()) => CaseOutcome::Pass,
        Err(payload) => {
            if payload.downcast_ref::<Discard>().is_some() {
                CaseOutcome::Discarded
            } else {
                CaseOutcome::Fail(payload_to_string(payload))
            }
        }
    }
}

/// The seed of case `i` under base seed `base` — stateless, so any case
/// can be replayed in isolation.
fn case_seed(base: u64, i: u64) -> u64 {
    let mut s = base ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut s)
}

// Property runs swap in a silent panic hook (shrinking re-runs the body
// against dozens of failing inputs; per-case backtraces would drown the
// report). The hook is process-global, so runs serialize on this lock.
static HOOK_LOCK: Mutex<()> = Mutex::new(());

/// Runs a property with the default (environment) configuration.
pub fn check<G: GenTuple, F: FnMut(G::Values)>(name: &str, gens: G, body: F) {
    check_with(Config::from_env(), name, gens, body)
}

/// Runs a property under an explicit configuration. Panics with a replay
/// report on failure.
pub fn check_with<G: GenTuple, F: FnMut(G::Values)>(
    config: Config,
    name: &str,
    gens: G,
    mut body: F,
) {
    let guard = HOOK_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let saved_hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));

    let verdict = drive(&config, name, &gens, &mut body);

    panic::set_hook(saved_hook);
    drop(guard);

    if let Some(report) = verdict {
        panic!("property `{name}` failed\n{report}");
    }
}

/// Executes cases and shrinks the first failure; returns a report if the
/// property is falsified. Runs under the silent panic hook.
fn drive<G: GenTuple, F: FnMut(G::Values)>(
    config: &Config,
    name: &str,
    gens: &G,
    body: &mut F,
) -> Option<String> {
    let max_discards = config.cases as u64 * 64;
    let mut discards = 0u64;
    let mut passed = 0u32;
    let mut case_index = 0u64;

    loop {
        if let Some(only) = config.only_case {
            case_index = only;
        } else if passed >= config.cases {
            return None;
        }
        let seed = case_seed(config.seed, case_index);
        let vals = gens.generate(&mut TestRng::seed_from_u64(seed));
        match run_case(body, vals.clone()) {
            CaseOutcome::Pass => {
                if config.only_case.is_some() {
                    return None;
                }
                passed += 1;
            }
            CaseOutcome::Discarded => {
                if config.only_case.is_some() {
                    return None;
                }
                discards += 1;
                if discards > max_discards {
                    return Some(format!(
                        "gave up after {discards} discarded cases (prop_assume! too \
                         restrictive); {passed}/{} cases passed",
                        config.cases
                    ));
                }
            }
            CaseOutcome::Fail(first_msg) => {
                let (minimal, msg, steps) =
                    shrink_failure(gens, body, vals, first_msg, config.max_shrink_steps);
                return Some(format!(
                    "minimal failing input (after {steps} shrink steps):\n\
                     {minimal:#?}\n\
                     assertion: {msg}\n\
                     replay: DOMA_PROP_SEED={seed:#x} DOMA_PROP_CASE={case_index} \
                     cargo test {name}",
                    seed = config.seed,
                ));
            }
        }
        case_index += 1;
    }
}

fn shrink_failure<G: GenTuple, F: FnMut(G::Values)>(
    gens: &G,
    body: &mut F,
    mut current: G::Values,
    mut current_msg: String,
    budget: u32,
) -> (G::Values, String, u32) {
    let mut steps = 0u32;
    'progress: loop {
        for which in 0..G::ARITY {
            for cand in gens.shrink_one(&current, which) {
                if steps >= budget {
                    break 'progress;
                }
                steps += 1;
                if let CaseOutcome::Fail(msg) = run_case(body, cand.clone()) {
                    current = cand;
                    current_msg = msg;
                    continue 'progress;
                }
            }
        }
        break;
    }
    (current, current_msg, steps)
}

/// Discards the current case unless `cond` holds (the property-harness
/// analogue of `proptest::prop_assume!`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            ::std::panic::panic_any($crate::property::Discard);
        }
    };
}

/// Declares shrinking property tests.
///
/// ```ignore
/// doma_testkit::property! {
///     /// Reversing twice is the identity.
///     fn reverse_involutive(xs in prop::vec_in(prop::range(0u32..100), 0..20)) {
///         let mut ys = xs.clone();
///         ys.reverse();
///         ys.reverse();
///         assert_eq!(xs, ys);
///     }
/// }
/// ```
///
/// Prefix a property with `#[cases(N)]` (before any doc comment) to
/// override the case count.
#[macro_export]
macro_rules! property {
    () => {};
    (
        #[cases($n:expr)]
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $gen:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            $crate::property::check_with(
                $crate::property::Config::from_env().with_cases($n),
                stringify!($name),
                ($($gen,)+),
                |($($arg,)+)| $body,
            );
        }
        $crate::property! { $($rest)* }
    };
    (
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $gen:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            $crate::property::check(
                stringify!($name),
                ($($gen,)+),
                |($($arg,)+)| $body,
            );
        }
        $crate::property! { $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_passes() {
        check(
            "commutative",
            (range(0u32..100), range(0u32..100)),
            |(a, b)| {
                assert_eq!(a + b, b + a);
            },
        );
    }

    #[test]
    fn failing_property_shrinks_to_minimum() {
        // "all values are < 10" is false; the minimal counterexample is 10.
        let result = panic::catch_unwind(|| {
            check_with(
                Config {
                    cases: 200,
                    seed: 1,
                    only_case: None,
                    max_shrink_steps: 2000,
                },
                "lt_ten",
                (range(0u32..1000),),
                |(v,)| assert!(v < 10, "{v} >= 10"),
            );
        });
        let msg = payload_to_string(result.unwrap_err());
        assert!(msg.contains("lt_ten"), "{msg}");
        assert!(
            msg.contains("10,"),
            "expected the shrunk value 10 in:\n{msg}"
        );
        assert!(msg.contains("DOMA_PROP_SEED"), "{msg}");
    }

    #[test]
    fn vec_shrinking_minimizes_length() {
        // "no vector contains a 7" — minimal counterexample is [7].
        let result = panic::catch_unwind(|| {
            check_with(
                Config {
                    cases: 500,
                    seed: 3,
                    only_case: None,
                    max_shrink_steps: 5000,
                },
                "no_sevens",
                (vec_in(range(0u32..8), 0..30),),
                |(xs,)| assert!(!xs.contains(&7), "found 7 in {xs:?}"),
            );
        });
        let msg = payload_to_string(result.unwrap_err());
        // The minimal input is the 1-element vector [7].
        assert!(
            msg.contains("[\n        7,\n    ]") || msg.contains("[7]"),
            "expected minimal [7] in:\n{msg}"
        );
    }

    #[test]
    fn discards_do_not_count_as_failures() {
        let mut even_seen = 0u32;
        check_with(
            Config {
                cases: 50,
                seed: 5,
                only_case: None,
                max_shrink_steps: 100,
            },
            "evens_only",
            (range(0u32..100),),
            |(v,)| {
                prop_assume!(v % 2 == 0);
                even_seen += 1;
                assert!(v % 2 == 0);
            },
        );
        assert!(even_seen >= 50);
    }

    #[test]
    fn iso_shrinks_through_the_mapping() {
        #[derive(Clone, Debug, PartialEq)]
        struct Wrapper(Vec<u32>);
        let gen = iso(vec_in(range(0u32..5), 0..20), Wrapper, |w: &Wrapper| {
            w.0.clone()
        });
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            check_with(
                Config {
                    cases: 300,
                    seed: 7,
                    only_case: None,
                    max_shrink_steps: 5000,
                },
                "short_wrappers",
                (gen,),
                |(w,)| assert!(w.0.len() < 4, "too long: {w:?}"),
            );
        }));
        let msg = payload_to_string(result.unwrap_err());
        // Shrinks to exactly the boundary length 4.
        assert!(msg.contains("Wrapper"), "{msg}");
    }

    property! {
        /// The macro itself: multiple properties in one invocation, with
        /// doc comments and trailing commas.
        fn macro_smoke(a in range(0i64..50), flag in bools(),) {
            let doubled = a * 2;
            assert_eq!(doubled % 2, 0);
            let _ = flag;
        }

        #[cases(16)]
        fn macro_with_cases(xs in vec_in(range(0u8..10), 0..5)) {
            assert!(xs.len() < 5);
        }
    }
}

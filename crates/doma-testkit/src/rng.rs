//! Deterministic pseudo-random number generation.
//!
//! Two generators, both tiny, fast and fully reproducible:
//!
//! * [`SplitMix64`] — a 64-bit state mixer, used to expand seeds and to
//!   derive independent per-case streams in the property harness.
//! * [`TestRng`] — xoshiro256++, the workhorse generator behind every
//!   workload generator, random search and property test in the
//!   workspace. Seeded from a single `u64` via SplitMix64 (the seeding
//!   procedure recommended by the xoshiro authors).
//!
//! The [`Rng`] trait carries the distribution helpers the repository
//! actually uses: uniform integer/float ranges (Lemire rejection for
//! integers, so there is no modulo bias), Bernoulli draws, Fisher–Yates
//! shuffles, and slice choice. [`Zipf`] adds the skewed distribution the
//! benches sample from.
//!
//! Everything here is `std`-only: no registry dependencies, so the
//! workspace builds with an empty cargo registry cache.

use std::ops::Range;

/// Mixes `state` one SplitMix64 step and returns the next output.
///
/// This is the stateless core of [`SplitMix64`]; it is exposed because
/// deriving "a good seed from a counter" (`mix(base ^ counter)`) is a
/// common need in deterministic test harnesses.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The SplitMix64 generator: 64 bits of state, equidistributed output.
///
/// Used to expand single-`u64` seeds into larger state and to derive
/// independent sub-seeds; for bulk generation prefer [`TestRng`].
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }
}

/// xoshiro256++ — the default deterministic generator of the workspace.
///
/// 256 bits of state, period 2²⁵⁶ − 1, passes BigCrush; the same seed
/// always yields the same stream on every platform (the algorithm is pure
/// integer arithmetic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds the generator from a single `u64`, expanding it through
    /// SplitMix64 as the xoshiro reference code recommends (this also
    /// guarantees the state is never all-zero).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives an independent generator from this one's stream —
    /// deterministic, and the parent advances by one draw.
    pub fn fork(&mut self) -> TestRng {
        let seed = self.next_u64();
        TestRng::seed_from_u64(seed)
    }
}

impl Rng for TestRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// A deterministic random source plus the distribution helpers the
/// workspace uses. Only [`Rng::next_u64`] is required; everything else is
/// derived.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.gen_f64() < p
        }
    }

    /// A uniform draw from a half-open range, without modulo bias for
    /// integer types (Lemire's multiply-shift rejection method).
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Fisher–Yates shuffle, in place.
    fn shuffle<T>(&mut self, xs: &mut [T])
    where
        Self: Sized,
    {
        for i in (1..xs.len()).rev() {
            let j = uniform_u64(self, i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// A uniformly chosen element, or `None` if the slice is empty.
    fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T>
    where
        Self: Sized,
    {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[uniform_u64(self, xs.len() as u64) as usize])
        }
    }
}

/// Uniform `u64` in `[0, span)` via Lemire rejection. `span` must be ≥ 1.
#[inline]
fn uniform_u64<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span >= 1);
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// Types that support uniform sampling from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[lo, hi)`. Panics if `lo >= hi`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty sample range {lo}..{hi}");
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, usize, i8, i16, i32, i64, isize);

impl SampleUniform for u64 {
    #[inline]
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty sample range {lo}..{hi}");
        lo + uniform_u64(rng, hi - lo)
    }
}

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty sample range {lo}..{hi}");
        let v = lo + rng.gen_f64() * (hi - lo);
        // Guard against rounding up to the excluded endpoint.
        if v >= hi {
            lo
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_range(rng, lo as f64, hi as f64) as f32
    }
}

/// An inverse-CDF Zipf sampler over `{0, …, n-1}`: `P(k) ∝ 1/(k+1)^theta`.
///
/// `theta = 0` is uniform; `theta ≈ 1` is the classic skew of real access
/// traces. Rank 0 is the most popular.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler. `n` must be ≥ 1, `theta` finite and ≥ 0.
    pub fn new(n: usize, theta: f64) -> Option<Self> {
        if n == 0 || !theta.is_finite() || theta < 0.0 {
            return None;
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        for c in &mut cdf {
            *c /= acc;
        }
        Some(Zipf { cdf })
    }

    /// Samples a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u = rng.gen_f64();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Golden values: lock the exact output streams so that any future
    /// change to the generators (which would silently re-randomize every
    /// seeded workload and test in the workspace) fails loudly.
    #[test]
    fn xoshiro_stream_is_stable() {
        let mut rng = TestRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut again = TestRng::seed_from_u64(0);
        let repeat: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(first, repeat, "same seed must give the same stream");

        let mut other = TestRng::seed_from_u64(1);
        assert_ne!(first[0], other.next_u64(), "seeds must differ");

        // Golden: pinned once, must never change.
        assert_eq!(
            first,
            vec![
                5987356902031041503,
                7051070477665621255,
                6633766593972829180,
                211316841551650330,
            ]
        );
    }

    #[test]
    fn splitmix_stream_is_stable() {
        let mut sm = SplitMix64::new(42);
        let got: Vec<u64> = (0..3).map(|_| sm.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                13679457532755275413,
                2949826092126892291,
                5139283748462763858,
            ]
        );
    }

    #[test]
    fn gen_range_respects_bounds_and_hits_extremes() {
        let mut rng = TestRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = rng.gen_range(0usize..5);
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values reachable: {seen:?}");

        for _ in 0..500 {
            let v = rng.gen_range(-3i64..4);
            assert!((-3..4).contains(&v));
        }
        for _ in 0..500 {
            let v = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty sample range")]
    fn empty_range_panics() {
        let mut rng = TestRng::seed_from_u64(0);
        let _ = rng.gen_range(3usize..3);
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = TestRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.02, "observed {frac}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = TestRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut a: Vec<u32> = (0..20).collect();
        let mut b = a.clone();
        TestRng::seed_from_u64(5).shuffle(&mut a);
        TestRng::seed_from_u64(5).shuffle(&mut b);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(a, sorted, "20 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = TestRng::seed_from_u64(9);
        let xs = [10, 20, 30];
        assert!(rng.choose::<i32>(&[]).is_none());
        let mut seen = [false; 3];
        for _ in 0..100 {
            let v = *rng.choose(&xs).unwrap();
            seen[xs.iter().position(|&x| x == v).unwrap()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = TestRng::seed_from_u64(1);
        let mut a = parent.fork();
        let mut b = parent.fork();
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn zipf_is_skewed_normalized_and_validated() {
        assert!(Zipf::new(0, 1.0).is_none());
        assert!(Zipf::new(4, -1.0).is_none());
        assert!(Zipf::new(4, f64::NAN).is_none());

        let z = Zipf::new(10, 1.5).unwrap();
        let mut rng = TestRng::seed_from_u64(0);
        let mut counts = [0u32; 10];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > 4 * counts[4], "{counts:?}");
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
    }
}

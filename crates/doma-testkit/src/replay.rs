//! Shared seed plumbing for replayable randomized harnesses.
//!
//! Both the property harness ([`crate::property`], `DOMA_PROP_*`) and the
//! fault-injection torture driver (`DOMA_FAULT_*`, see `doma-fault`) read
//! their seeds through this module, so the parsing rules — decimal or
//! `0x`-prefixed hex — and the replay-line conventions are identical
//! everywhere.
//!
//! Torture-driver environment contract:
//!
//! * `DOMA_FAULT_SEEDS=n` — number of seeded fault plans per matrix cell
//!   (default 32).
//! * `DOMA_FAULT_SEED=0x…` — replay exactly one plan: the driver runs only
//!   the episode whose derived seed matches, with full logging.
//!
//! On an invariant violation the driver prints a line produced by
//! [`replay_line`]; pasting it into a shell reproduces the exact
//! interleaving, because every random decision in an episode is derived
//! from that one seed.

use crate::rng::splitmix64;

/// Parses a `u64` from decimal or `0x`/`0X`-prefixed hex (the format every
/// `DOMA_*_SEED` variable accepts, and the format replay lines print).
pub fn parse_u64(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Reads an environment variable as a [`parse_u64`] integer.
pub fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|s| parse_u64(&s))
}

/// Default base seed of the torture driver's fault-plan sequence.
pub const FAULT_BASE_SEED: u64 = 0xFA57_5EED_0000_0001;

/// Default number of seeded fault plans per torture-matrix cell.
pub const FAULT_DEFAULT_SEEDS: u64 = 32;

/// How a torture run decides which episode seeds to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSeeds {
    /// Run `count` episodes with seeds derived from `base`.
    Sweep {
        /// Base seed the per-episode seeds are split from.
        base: u64,
        /// Number of episodes.
        count: u64,
    },
    /// Replay exactly one episode seed (from `DOMA_FAULT_SEED`).
    Replay(u64),
}

impl FaultSeeds {
    /// Reads the torture-seed configuration from the environment:
    /// `DOMA_FAULT_SEED` forces a single-episode replay, otherwise
    /// `DOMA_FAULT_SEEDS` (default [`FAULT_DEFAULT_SEEDS`]) sizes a sweep
    /// from the fixed base seed.
    pub fn from_env() -> Self {
        if let Some(seed) = env_u64("DOMA_FAULT_SEED") {
            return FaultSeeds::Replay(seed);
        }
        let count = env_u64("DOMA_FAULT_SEEDS").unwrap_or(FAULT_DEFAULT_SEEDS);
        FaultSeeds::Sweep {
            base: FAULT_BASE_SEED,
            count,
        }
    }

    /// The episode seeds this configuration denotes, in execution order.
    /// Sweep seeds are derived with SplitMix64 so neighbouring indices are
    /// statistically unrelated.
    pub fn seeds(&self) -> Vec<u64> {
        match *self {
            FaultSeeds::Replay(seed) => vec![seed],
            FaultSeeds::Sweep { base, count } => {
                let mut state = base;
                (0..count).map(|_| splitmix64(&mut state)).collect()
            }
        }
    }
}

/// Formats the one-line replay recipe the torture driver prints on an
/// invariant violation. `scenario` names the matrix cell (for example
/// `da/partition`), `test` the `cargo test` filter that reaches it.
pub fn replay_line(seed: u64, scenario: &str, test: &str) -> String {
    format!("replay: DOMA_FAULT_SEED={seed:#x} cargo test {test}   # scenario {scenario}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_decimal_and_hex() {
        assert_eq!(parse_u64("42"), Some(42));
        assert_eq!(parse_u64(" 0x2A "), Some(42));
        assert_eq!(parse_u64("0XFF"), Some(255));
        assert_eq!(parse_u64("nope"), None);
        assert_eq!(parse_u64("0x"), None);
    }

    #[test]
    fn sweep_seeds_are_deterministic_and_distinct() {
        let sweep = FaultSeeds::Sweep { base: 7, count: 32 };
        let a = sweep.seeds();
        let b = sweep.seeds();
        assert_eq!(a, b);
        assert_eq!(a.len(), 32);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 32, "splitmix should not collide here");
    }

    #[test]
    fn replay_pins_a_single_seed() {
        assert_eq!(FaultSeeds::Replay(9).seeds(), vec![9]);
    }

    #[test]
    fn replay_line_mentions_seed_and_test() {
        let line = replay_line(0xABC, "sa/crash", "fault_torture");
        assert!(line.contains("DOMA_FAULT_SEED=0xabc"), "{line}");
        assert!(line.contains("cargo test fault_torture"), "{line}");
        assert!(line.contains("sa/crash"), "{line}");
    }
}

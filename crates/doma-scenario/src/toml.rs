//! A zero-dependency TOML-subset parser with line-numbered errors.
//!
//! The subset covers exactly what scenario files need and nothing more:
//!
//! * `# comment` lines and trailing comments,
//! * `[section]` tables and `[[section]]` array-of-table headers,
//! * `key = value` pairs inside a section (bare keys:
//!   `[A-Za-z0-9_-]+`),
//! * values: double-quoted strings (`\"` `\\` `\n` `\t` escapes),
//!   integers, floats, booleans and single-line arrays of scalars.
//!
//! Everything is positional: every table and entry remembers its
//! 1-indexed source line so validation errors point at the offending
//! line, not just the offending key.

use crate::ScenarioError;

/// A parsed scalar or array value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A double-quoted string, unescaped.
    Str(String),
    /// A decimal integer (`i128` so the full `u64` seed range survives
    /// a serialize → parse round-trip).
    Int(i128),
    /// A float (any number containing `.`, `e` or `E`).
    Float(f64),
    /// `true` / `false`.
    Bool(bool),
    /// A single-line array of scalar values.
    Array(Vec<Value>),
}

impl Value {
    /// A short label for error messages ("string", "integer", …).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::Array(_) => "array",
        }
    }
}

/// One `key = value` entry with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// The bare key.
    pub key: String,
    /// The parsed value.
    pub value: Value,
    /// 1-indexed source line of the entry.
    pub line: usize,
}

/// One `[section]` or `[[section]]` table in file order.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// The header name (without brackets).
    pub name: String,
    /// Whether the header was the `[[name]]` array-of-tables form.
    pub is_array: bool,
    /// 1-indexed source line of the header.
    pub line: usize,
    /// The table's entries, in file order.
    pub entries: Vec<Entry>,
}

impl Table {
    /// Looks up an entry by key.
    pub fn get(&self, key: &str) -> Option<&Entry> {
        self.entries.iter().find(|e| e.key == key)
    }
}

/// A parsed document: the file's tables in order of appearance.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Doc {
    /// All tables, in file order (array-of-table headers repeat).
    pub tables: Vec<Table>,
}

impl Doc {
    /// The first table with this name, if any.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// Every table with this name, in file order.
    pub fn tables_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Table> {
        self.tables.iter().filter(move |t| t.name == name)
    }
}

fn err(line: usize, message: impl Into<String>) -> ScenarioError {
    ScenarioError::at(line, message)
}

fn is_bare_key(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

/// Strips a trailing comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses one scalar/array value; `rest` must be fully consumed.
fn parse_value(text: &str, line: usize) -> Result<Value, ScenarioError> {
    let text = text.trim();
    if text.is_empty() {
        return Err(err(line, "missing value after '='"));
    }
    if let Some(body) = text.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| err(line, "unterminated array (expected ']')"))?;
        let mut items = Vec::new();
        for piece in split_array_items(body, line)? {
            let piece = piece.trim();
            if piece.is_empty() {
                continue;
            }
            let item = parse_value(piece, line)?;
            if matches!(item, Value::Array(_)) {
                return Err(err(line, "nested arrays are not supported"));
            }
            items.push(item);
        }
        return Ok(Value::Array(items));
    }
    if text.starts_with('"') {
        return parse_string(text, line).map(Value::Str);
    }
    match text {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    let numeric = text
        .chars()
        .next()
        .is_some_and(|c| c.is_ascii_digit() || c == '-' || c == '+' || c == '.');
    if numeric && text.contains(['.', 'e', 'E']) {
        return text
            .parse::<f64>()
            .ok()
            .filter(|v| v.is_finite())
            .map(Value::Float)
            .ok_or_else(|| err(line, format!("bad float '{text}'")));
    }
    if numeric {
        return text
            .parse::<i128>()
            .ok()
            .filter(|v| i64::try_from(*v).is_ok() || u64::try_from(*v).is_ok())
            .map(Value::Int)
            .ok_or_else(|| err(line, format!("bad integer '{text}'")));
    }
    Err(err(
        line,
        format!("bad value '{text}' (expected string, number, boolean or array)"),
    ))
}

/// Splits an array body on commas that sit outside string literals.
fn split_array_items(body: &str, line: usize) -> Result<Vec<&str>, ScenarioError> {
    let mut items = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            ',' if !in_str => {
                items.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if in_str {
        return Err(err(line, "unterminated string in array"));
    }
    items.push(&body[start..]);
    Ok(items)
}

/// Unescapes a double-quoted string literal.
fn parse_string(text: &str, line: usize) -> Result<String, ScenarioError> {
    let body = text
        .strip_prefix('"')
        .ok_or_else(|| err(line, "expected '\"'"))?;
    let mut out = String::new();
    let mut chars = body.chars();
    loop {
        match chars.next() {
            None => return Err(err(line, "unterminated string")),
            Some('"') => break,
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(other) => {
                    return Err(err(line, format!("unsupported escape '\\{other}'")));
                }
                None => return Err(err(line, "unterminated escape")),
            },
            Some(c) => out.push(c),
        }
    }
    let rest: String = chars.collect();
    if !rest.trim().is_empty() {
        return Err(err(
            line,
            format!("trailing garbage after string: '{}'", rest.trim()),
        ));
    }
    Ok(out)
}

/// Escapes a string for serialization; the inverse of [`parse_string`].
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out.push('"');
    out
}

/// Parses a whole document. Keys are only legal inside a section; every
/// error carries the 1-indexed source line.
pub fn parse(src: &str) -> Result<Doc, ScenarioError> {
    let mut doc = Doc::default();
    for (i, raw) in src.lines().enumerate() {
        let line = i + 1;
        let text = strip_comment(raw).trim();
        if text.is_empty() {
            continue;
        }
        if let Some(header) = text.strip_prefix("[[") {
            let name = header
                .strip_suffix("]]")
                .map(str::trim)
                .ok_or_else(|| err(line, "malformed table header (expected ']]')"))?;
            if !is_bare_key(name) {
                return Err(err(line, format!("bad table name '{name}'")));
            }
            doc.tables.push(Table {
                name: name.to_string(),
                is_array: true,
                line,
                entries: Vec::new(),
            });
            continue;
        }
        if let Some(header) = text.strip_prefix('[') {
            let name = header
                .strip_suffix(']')
                .map(str::trim)
                .ok_or_else(|| err(line, "malformed table header (expected ']')"))?;
            if !is_bare_key(name) {
                return Err(err(line, format!("bad table name '{name}'")));
            }
            if doc.tables.iter().any(|t| t.name == name && !t.is_array) {
                return Err(err(line, format!("duplicate table [{name}]")));
            }
            doc.tables.push(Table {
                name: name.to_string(),
                is_array: false,
                line,
                entries: Vec::new(),
            });
            continue;
        }
        let (key, value) = text
            .split_once('=')
            .ok_or_else(|| err(line, format!("expected 'key = value', got '{text}'")))?;
        let key = key.trim();
        if !is_bare_key(key) {
            return Err(err(line, format!("bad key '{key}'")));
        }
        let value = parse_value(value, line)?;
        let table = doc
            .tables
            .last_mut()
            .ok_or_else(|| err(line, format!("key '{key}' outside of a [section]")))?;
        if table.entries.iter().any(|e| e.key == key) {
            return Err(err(line, format!("duplicate key '{key}'")));
        }
        table.entries.push(Entry {
            key: key.to_string(),
            value,
            line,
        });
    }
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_keys_and_scalars() {
        let doc = parse(
            "# header comment\n\
             [scenario]\n\
             name = \"demo\" # trailing\n\
             n = 6\n\
             cc = 0.25\n\
             flag = true\n\
             [model]\n\
             window = [10, 50]\n",
        )
        .unwrap();
        assert_eq!(doc.tables.len(), 2);
        let s = doc.table("scenario").unwrap();
        assert_eq!(s.get("name").unwrap().value, Value::Str("demo".into()));
        assert_eq!(s.get("n").unwrap().value, Value::Int(6));
        assert_eq!(s.get("cc").unwrap().value, Value::Float(0.25));
        assert_eq!(s.get("flag").unwrap().value, Value::Bool(true));
        assert_eq!(s.get("name").unwrap().line, 3);
        let m = doc.table("model").unwrap();
        assert_eq!(
            m.get("window").unwrap().value,
            Value::Array(vec![Value::Int(10), Value::Int(50)])
        );
    }

    #[test]
    fn integers_cover_the_full_u64_and_i64_ranges() {
        let doc = parse("[t]\nbig = 18446744073709551615\nneg = -9223372036854775808\n").unwrap();
        let t = doc.table("t").unwrap();
        assert_eq!(t.get("big").unwrap().value, Value::Int(u64::MAX as i128));
        assert_eq!(t.get("neg").unwrap().value, Value::Int(i64::MIN as i128));
        // One past either end is rejected, as is anything unparseable.
        assert!(parse("[t]\nx = 18446744073709551616\n").is_err());
        assert!(parse("[t]\nx = -9223372036854775809\n").is_err());
    }

    #[test]
    fn array_of_tables_repeat_in_order() {
        let doc = parse("[[phase]]\na = 1\n[[phase]]\na = 2\n").unwrap();
        let phases: Vec<_> = doc.tables_named("phase").collect();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].get("a").unwrap().value, Value::Int(1));
        assert_eq!(phases[1].get("a").unwrap().value, Value::Int(2));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "line1\nline2\t\"quoted\" back\\slash";
        let doc = parse(&format!("[t]\ns = {}\n", escape(original))).unwrap();
        assert_eq!(
            doc.table("t").unwrap().get("s").unwrap().value,
            Value::Str(original.to_string())
        );
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let doc = parse("[t]\ns = \"a # b\"\n").unwrap();
        assert_eq!(
            doc.table("t").unwrap().get("s").unwrap().value,
            Value::Str("a # b".into())
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let cases: &[(&str, usize, &str)] = &[
            ("[t]\nx == 1\n", 2, "bad value"),
            ("x = 1\n", 1, "outside of a [section]"),
            ("[t\n", 1, "malformed table header"),
            ("[[t]\n", 1, "malformed table header"),
            ("[t]\nx = \"abc\n", 2, "unterminated string"),
            ("[t]\nx = [1, 2\n", 2, "unterminated array"),
            ("[t]\nx = 1\nx = 2\n", 3, "duplicate key"),
            ("[t]\n[t]\n", 2, "duplicate table"),
            ("[t]\nx = zebra\n", 2, "bad value"),
            ("[t]\nx = 1.x\n", 2, "bad float"),
            ("[t]\nx = [[1]]\n", 2, "nested arrays"),
            ("[t]\nx =\n", 2, "missing value"),
            ("[t]\nx = \"a\\q\"\n", 2, "unsupported escape"),
            ("[t]\nx = \"a\" junk\n", 2, "trailing garbage"),
        ];
        for (src, line, needle) in cases {
            let e = parse(src).unwrap_err();
            assert_eq!(e.line, Some(*line), "{src:?}: {e}");
            assert!(e.to_string().contains(needle), "{src:?}: {e}");
        }
    }

    #[test]
    fn floats_with_exponents_parse() {
        let doc = parse("[t]\na = 1e3\nb = 2.5E-1\n").unwrap();
        let t = doc.table("t").unwrap();
        assert_eq!(t.get("a").unwrap().value, Value::Float(1000.0));
        assert_eq!(t.get("b").unwrap().value, Value::Float(0.25));
    }
}

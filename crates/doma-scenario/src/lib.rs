//! # doma-scenario
//!
//! A declarative scenario format for the repo's evaluation surface: a
//! zero-dependency TOML-subset config describing the catalog shape, a
//! per-phase request mix (every `doma-workload` generator plus verbatim
//! trace replay), a declarative fault plan, the tournament entrant under
//! test, and a block of **expected invariants** checked when the run
//! ends (cost vs OPT, t-availability, scheme-churn ceilings, obs-metric
//! parity).
//!
//! The crate ships three layers:
//!
//! * [`toml`] — the line-numbered TOML-subset parser (hermetic-build
//!   policy: no external TOML crate),
//! * [`model`] — the typed [`Scenario`] with full validation and the
//!   deterministic [`Scenario::to_toml`] serializer,
//! * [`runner`] — executes a scenario through the protocol simulator
//!   with the obs registry attached and audits the expected-invariant
//!   block; [`runner::RunReport::digest`] is the FNV-1a 64 digest of the
//!   byte-stable obs snapshot, pinned per builtin scenario as the
//!   golden-trace conformance wall.
//!
//! Builtin scenarios live under `scenarios/*.toml` and are addressed by
//! name (see [`builtin`]); `domactl scenario <name|path>` runs them from
//! the command line and `cargo test` replays every one against its
//! pinned digest.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod builtin;
pub mod model;
pub mod runner;
pub mod toml;

pub use model::{Entrant, Expect, FaultKind, FaultSpec, MsgFilter, Phase, Scenario, WorkloadSpec};
pub use runner::{build_schedule, build_sim, build_spec, run, run_traced, ClusterSpec, RunReport};

use std::fmt;

/// A scenario loading, validation or execution error, carrying the
/// offending 1-indexed source line when one is known.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// 1-indexed source line of the offending construct, if known.
    pub line: Option<usize>,
    /// Human-readable description.
    pub message: String,
}

impl ScenarioError {
    /// An error anchored to a source line.
    pub fn at(line: usize, message: impl Into<String>) -> Self {
        ScenarioError {
            line: Some(line),
            message: message.into(),
        }
    }

    /// An error with no source position (runtime failures).
    pub fn msg(message: impl Into<String>) -> Self {
        ScenarioError {
            line: None,
            message: message.into(),
        }
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(f, "line {line}: {}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// FNV-1a 64-bit digest — the golden-trace fingerprint function. Applied
/// to the byte-stable obs snapshot JSON; rendered as `0x` + 16 hex
/// digits everywhere a digest is pinned.
pub fn digest64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Renders a digest the way scenario files pin it.
pub fn format_digest(digest: u64) -> String {
    format!("0x{digest:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_stable_and_sensitive() {
        assert_eq!(digest64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(digest64(b"doma"), digest64(b"doma"));
        assert_ne!(digest64(b"doma"), digest64(b"Doma"));
        assert_eq!(format_digest(0xabc), "0x0000000000000abc");
    }

    #[test]
    fn errors_render_with_and_without_lines() {
        assert_eq!(ScenarioError::at(3, "bad").to_string(), "line 3: bad");
        assert_eq!(ScenarioError::msg("bad").to_string(), "bad");
    }
}

//! Executes a validated [`Scenario`] through the protocol simulator and
//! audits its expected-invariant block.
//!
//! The runner mirrors the tournament's measurement discipline: the
//! entrant runs as a real message-passing protocol (SA and DA natively,
//! adaptive allocators as driver-side plan oracles) with the obs bundle
//! and event tracer attached, and — for failure-free scenarios — the
//! summed `protocol/cost.*` registry counters must equal the simulator's
//! exact tallies. The byte-stable obs snapshot is hashed with FNV-1a 64
//! into the scenario's digest; builtin scenarios pin that digest
//! in-repo, turning every run into a conformance check.

use crate::model::{Entrant, FaultKind, MsgFilter, Scenario, WorkloadSpec};
use crate::{digest64, format_digest, ScenarioError};
use doma_algorithms::{
    ClusteredAllocation, CostOblivious, MobileMirror, OfflineOptimal, SlidingWindowConvergent,
    WriteInvalidateCache,
};
use doma_core::{CostModel, CostVector, ProcSet, ProcessorId, Schedule};
use doma_protocol::{AdaptiveAlgo, PlanOracle, ProtocolConfig, ProtocolSim};
use doma_sim::{FaultAction, FaultPlan, FaultRule, LinkFilter, MsgKind, NodeId};
use doma_testkit::rng::splitmix64;
use doma_workload::{
    AppendOnlyWorkload, ChaoticWorkload, HotspotWorkload, MobileWorkload, ScheduleGen,
    UniformWorkload, ZipfWorkload,
};

/// The outcome of one scenario run: exact tallies, the audited
/// expected-invariant block, and the golden digest.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The scenario's name.
    pub scenario: String,
    /// The entrant that ran.
    pub entrant: &'static str,
    /// Requests executed.
    pub requests: usize,
    /// The simulator's exact resource tally.
    pub cost: CostVector,
    /// The tally priced under the scenario's cost model.
    pub algo_cost: f64,
    /// The exact offline optimum (computed when the scenario bounds the
    /// ratio).
    pub opt_cost: Option<f64>,
    /// `algo_cost / opt_cost`, when OPT was computed.
    pub ratio: Option<f64>,
    /// Reads completed by the protocol.
    pub reads_completed: u64,
    /// Messages lost to injected faults.
    pub dropped_messages: u64,
    /// The obs `protocol/scheme_churn` counter.
    pub scheme_churn: u64,
    /// Valid replica holders at quiescence.
    pub valid_holders: ProcSet,
    /// `0x` + 16 hex digits of the obs snapshot's FNV-1a 64 digest.
    pub digest: String,
    /// The byte-stable obs snapshot JSON the digest covers.
    pub snapshot_json: String,
    /// Every expected-invariant violation, in audit order (empty =
    /// scenario passed).
    pub violations: Vec<String>,
}

impl RunReport {
    /// Whether every expected invariant held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// A human-readable summary block.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "scenario {} ({} entrant, {} requests)\n",
            self.scenario, self.entrant, self.requests
        ));
        out.push_str(&format!(
            "  cost: {:.3} ({} control, {} data, {} I/O)\n",
            self.algo_cost, self.cost.control, self.cost.data, self.cost.io
        ));
        if let (Some(opt), Some(ratio)) = (self.opt_cost, self.ratio) {
            out.push_str(&format!("  vs OPT: {opt:.3} (ratio {ratio:.4})\n"));
        }
        out.push_str(&format!(
            "  reads completed: {}; dropped messages: {}; scheme churn: {}; holders: {}\n",
            self.reads_completed, self.dropped_messages, self.scheme_churn, self.valid_holders
        ));
        out.push_str(&format!("  digest: {}\n", self.digest));
        if self.violations.is_empty() {
            out.push_str("  expect: PASS\n");
        } else {
            for v in &self.violations {
                out.push_str(&format!("  expect: FAIL — {v}\n"));
            }
        }
        out
    }

    /// The byte-stable JSON export: scenario identity, digest, verdict
    /// and the full obs snapshot.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"scenario\": {}, \"entrant\": {}, \"requests\": {}, \"digest\": {}, ",
            json_str(&self.scenario),
            json_str(self.entrant),
            self.requests,
            json_str(&self.digest),
        ));
        out.push_str(&format!("\"passed\": {}, \"violations\": [", self.passed()));
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(v));
        }
        out.push_str(&format!("], \"obs\": {}}}", self.snapshot_json));
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn pair() -> ProcSet {
    [0usize, 1].into_iter().collect()
}

fn runtime(e: impl std::fmt::Display) -> ScenarioError {
    ScenarioError::msg(e.to_string())
}

/// The per-phase generator seed: derived from the scenario seed and the
/// phase index so phases draw independent streams while the whole
/// schedule stays a pure function of the scenario.
fn phase_seed(seed: u64, index: usize) -> u64 {
    let mut state = seed ^ ((index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    splitmix64(&mut state)
}

/// Materializes the scenario's full request schedule: each phase's
/// generator produces its slice with a derived seed, trace phases replay
/// verbatim, and the slices concatenate in phase order.
pub fn build_schedule(scenario: &Scenario) -> Result<Schedule, ScenarioError> {
    let n = scenario.n;
    let mut schedule = Schedule::new();
    for (i, phase) in scenario.phases.iter().enumerate() {
        let seed = phase_seed(scenario.seed, i);
        let slice = match &phase.workload {
            WorkloadSpec::Uniform { read_fraction } => UniformWorkload::new(n, *read_fraction)
                .map_err(runtime)?
                .generate(phase.len, seed),
            WorkloadSpec::Zipf {
                theta,
                read_fraction,
            } => ZipfWorkload::new(n, *theta, *read_fraction)
                .map_err(runtime)?
                .generate(phase.len, seed),
            WorkloadSpec::Hotspot {
                phase_len,
                hot_prob,
            } => HotspotWorkload::new(n, *phase_len, *hot_prob)
                .map_err(runtime)?
                .generate(phase.len, seed),
            WorkloadSpec::Chaotic { redraw_every } => ChaoticWorkload::new(n, *redraw_every)
                .map_err(runtime)?
                .generate(phase.len, seed),
            WorkloadSpec::Mobile {
                cells,
                callers,
                move_prob,
                read_fraction,
            } => MobileWorkload::new(*cells, *callers, *move_prob, *read_fraction)
                .map_err(runtime)?
                .generate(phase.len, seed),
            WorkloadSpec::AppendOnly {
                generators,
                reads_per_write,
            } => AppendOnlyWorkload::new(n, *generators, *reads_per_write)
                .map_err(runtime)?
                .generate(phase.len, seed),
            WorkloadSpec::Trace { text } => {
                doma_workload::trace::read_trace(text.as_bytes()).map_err(runtime)?
            }
        };
        schedule.extend_from(&slice);
    }
    Ok(schedule)
}

/// Translates the scenario's declarative faults into an engine
/// [`FaultPlan`] seeded by the scenario seed.
pub fn build_fault_plan(scenario: &Scenario) -> FaultPlan {
    let mut plan = FaultPlan::new(scenario.seed);
    for fault in &scenario.faults {
        if fault.kind == FaultKind::Partition {
            if let Some((start, end)) = fault.window {
                plan = plan.partition(start, end, fault.side.clone());
            }
            continue;
        }
        let filter = LinkFilter {
            from: fault.from.map(NodeId),
            to: fault.to.map(NodeId),
            kind: fault.msg.map(|m| match m {
                MsgFilter::Control => MsgKind::Control,
                MsgFilter::Data => MsgKind::Data,
            }),
        };
        let action = match fault.kind {
            FaultKind::Delay => FaultAction::Delay(fault.amount),
            FaultKind::Duplicate => FaultAction::Duplicate(fault.amount),
            FaultKind::Jitter => FaultAction::Jitter { max: fault.amount },
            _ => FaultAction::Drop,
        };
        let mut rule = FaultRule::always(filter, action).with_probability(fault.probability);
        if let Some((start, end)) = fault.window {
            rule = rule.during(start, end);
        }
        if let Some(budget) = fault.budget {
            rule = rule.with_budget(budget);
        }
        plan = plan.rule(rule);
    }
    plan
}

/// One entrant's deployment, decomposed so runtimes other than the
/// simulator (the socket cluster) can stand it up: the node-side
/// protocol configuration, and — for adaptive entrants — the driver-side
/// plan oracle.
pub struct ClusterSpec {
    /// Cluster size.
    pub n: usize,
    /// What every node runs.
    pub config: ProtocolConfig,
    /// The driver-side planning oracle (adaptive entrants only).
    pub oracle: Option<Box<dyn PlanOracle>>,
}

/// Builds the entrant's deployment spec — the exact constructors the
/// tournament roster uses, decomposed for transport-agnostic runtimes.
pub fn build_spec(scenario: &Scenario) -> Result<ClusterSpec, ScenarioError> {
    let n = scenario.n;
    let oracle: Option<Box<dyn PlanOracle>> = match scenario.entrant {
        Entrant::Sa | Entrant::Da => None,
        Entrant::Convergent => Some(Box::new(
            SlidingWindowConvergent::new(n, 2, pair(), 8, 4).map_err(runtime)?,
        )),
        Entrant::WriteInvalidate => Some(Box::new(
            WriteInvalidateCache::new(pair()).map_err(runtime)?,
        )),
        Entrant::CostOblivious => Some(Box::new(
            CostOblivious::new(n, 2, pair(), 2).map_err(runtime)?,
        )),
        Entrant::MobileMirror => Some(Box::new(MobileMirror::new(n, 2, pair()).map_err(runtime)?)),
        Entrant::Clustered => Some(Box::new(
            ClusteredAllocation::new(n, 2, pair()).map_err(runtime)?,
        )),
    };
    let config = match (&scenario.entrant, &oracle) {
        (Entrant::Sa, _) => ProtocolConfig::Sa { q: pair() },
        (Entrant::Da, _) => ProtocolConfig::Da {
            f: ProcSet::from_iter([0usize]),
            p: ProcessorId::new(1),
        },
        (_, Some(o)) => {
            let algo = AdaptiveAlgo::from_name(o.name()).ok_or_else(|| {
                ScenarioError::msg(format!("unknown adaptive algorithm {:?}", o.name()))
            })?;
            ProtocolConfig::Adaptive {
                t: o.t(),
                initial: o.initial_scheme(),
                algo,
            }
        }
        _ => unreachable!("non-SA/DA entrants always carry an oracle"),
    };
    Ok(ClusterSpec { n, config, oracle })
}

/// Builds the protocol simulator for the scenario's entrant — the same
/// deployment [`build_spec`] describes, stood up on the deterministic
/// engine.
pub fn build_sim(scenario: &Scenario) -> Result<ProtocolSim, ScenarioError> {
    let spec = build_spec(scenario)?;
    let sim = match (spec.config, spec.oracle) {
        (_, Some(oracle)) => ProtocolSim::new_adaptive(spec.n, oracle),
        (ProtocolConfig::Sa { q }, None) => ProtocolSim::new_sa(spec.n, q),
        (ProtocolConfig::Da { f, p }, None) => ProtocolSim::new_da(spec.n, f, p),
        (ProtocolConfig::Adaptive { .. }, None) => {
            unreachable!("adaptive spec always carries its oracle")
        }
    };
    sim.map_err(runtime)
}

/// The scenario's cost model.
pub fn build_model(scenario: &Scenario) -> Result<CostModel, ScenarioError> {
    if scenario.environment == "mc" {
        CostModel::mobile(scenario.cc, scenario.cd).map_err(runtime)
    } else {
        CostModel::stationary(scenario.cc, scenario.cd).map_err(runtime)
    }
}

/// Runs the scenario end to end and audits its expected-invariant block.
/// Returns `Ok` even when expectations fail — inspect
/// [`RunReport::passed`]; `Err` means the scenario could not execute.
pub fn run(scenario: &Scenario) -> Result<RunReport, ScenarioError> {
    run_impl(scenario, false).map(|(report, _)| report)
}

/// Runs the scenario with per-request causal spans enabled
/// ([`ProtocolSim::enable_request_spans`]) and returns the obs bundle
/// alongside the report, so `domactl trace` can feed the event log to
/// [`doma_obs::trace::TraceModel`]. Span records change the obs
/// snapshot, so the golden-digest audit is skipped (every other audit —
/// obs parity included — still runs; spans are events, not metrics).
pub fn run_traced(scenario: &Scenario) -> Result<(RunReport, doma_obs::Obs), ScenarioError> {
    run_impl(scenario, true)
}

fn run_impl(
    scenario: &Scenario,
    traced: bool,
) -> Result<(RunReport, doma_obs::Obs), ScenarioError> {
    let schedule = build_schedule(scenario)?;
    let mut sim = build_sim(scenario)?;
    let obs = sim.attach_obs(scenario.events);
    let _tracer = sim.attach_tracer_on(obs.events().clone());
    if traced {
        sim.enable_request_spans();
    }
    let plan = build_fault_plan(scenario);
    if !plan.is_empty() {
        sim.engine_mut().install_faults(plan);
    }
    let report = sim.execute(&schedule).map_err(runtime)?;
    sim.obs_flush();

    let model = build_model(scenario)?;
    let algo_cost = report.cost.eval(&model);
    let snapshot_json = obs.snapshot_json();
    let digest = format_digest(digest64(snapshot_json.as_bytes()));
    let snap = obs.metrics().snapshot();
    let scheme_churn = snap.sum_counters("protocol", "scheme_churn");
    let valid_holders = sim.valid_holders_of(ProtocolSim::object());

    let expect = &scenario.expect;
    let mut violations = Vec::new();
    if report.dropped_messages > expect.max_dropped_messages {
        violations.push(format!(
            "dropped_messages {} exceeds ceiling {}",
            report.dropped_messages, expect.max_dropped_messages
        ));
    }
    if let Some(want) = expect.reads_completed {
        if report.reads_completed != want {
            violations.push(format!(
                "reads_completed {} != pinned {want}",
                report.reads_completed
            ));
        }
    }
    if let Some(floor) = expect.min_valid_holders {
        if valid_holders.len() < floor {
            violations.push(format!(
                "valid holders {} below t-availability floor {floor}",
                valid_holders.len()
            ));
        }
    }
    if let Some(ceiling) = expect.max_scheme_churn {
        if scheme_churn > ceiling {
            violations.push(format!(
                "scheme_churn {scheme_churn} exceeds ceiling {ceiling}"
            ));
        }
    }
    if expect.obs_parity {
        let counted = CostVector::new(
            snap.sum_counters("protocol", "cost.control"),
            snap.sum_counters("protocol", "cost.data"),
            snap.sum_counters("protocol", "cost.io"),
        );
        if counted != report.cost {
            violations.push(format!(
                "obs parity violation: registry {counted:?} vs simulator {:?}",
                report.cost
            ));
        }
    }
    let (mut opt_cost, mut ratio) = (None, None);
    if let Some(ceiling) = expect.max_ratio_vs_opt {
        let opt = OfflineOptimal::new(scenario.n, scenario.entrant.t(), pair(), model)
            .map_err(runtime)?
            .optimal_cost(&schedule)
            .map_err(runtime)?;
        let r = if opt > 0.0 {
            algo_cost / opt
        } else if algo_cost > 0.0 {
            f64::INFINITY
        } else {
            1.0
        };
        opt_cost = Some(opt);
        ratio = Some(r);
        if r > ceiling + 1e-9 {
            violations.push(format!("ratio vs OPT {r:.4} exceeds ceiling {ceiling}"));
        }
    }
    if let Some(golden) = &scenario.golden {
        // Span records change the snapshot; goldens pin the untraced run.
        if !traced && *golden != digest {
            violations.push(format!("digest {digest} != pinned golden {golden}"));
        }
    }

    let report = RunReport {
        scenario: scenario.name.clone(),
        entrant: scenario.entrant.as_str(),
        requests: schedule.len(),
        cost: report.cost,
        algo_cost,
        opt_cost,
        ratio,
        reads_completed: report.reads_completed,
        dropped_messages: report.dropped_messages,
        scheme_churn,
        valid_holders,
        digest,
        snapshot_json,
        violations,
    };
    Ok((report, obs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Scenario;

    fn demo(extra: &str) -> Scenario {
        Scenario::parse(&format!(
            "[scenario]\n\
             name = \"demo\"\n\
             description = \"runner demo\"\n\
             n = 6\n\
             seed = 7\n\
             entrant = \"da\"\n\
             [model]\n\
             environment = \"sc\"\n\
             cc = 0.25\n\
             cd = 1.0\n\
             [[phase]]\n\
             name = \"steady\"\n\
             workload = \"uniform\"\n\
             len = 20\n\
             read_fraction = 0.7\n\
             [[phase]]\n\
             name = \"skewed\"\n\
             workload = \"zipf\"\n\
             len = 10\n\
             theta = 1.0\n\
             read_fraction = 0.5\n\
             [expect]\n\
             max_dropped_messages = 0\n\
             min_valid_holders = 2\n\
             {extra}"
        ))
        .unwrap()
    }

    #[test]
    fn schedules_concatenate_phases_deterministically() {
        let s = demo("");
        let a = build_schedule(&s).unwrap();
        let b = build_schedule(&s).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 30);
        let mut reseeded = s.clone();
        reseeded.seed = 8;
        assert_ne!(build_schedule(&reseeded).unwrap(), a);
    }

    #[test]
    fn run_is_deterministic_and_audits_expectations() {
        let s = demo("");
        let a = run(&s).unwrap();
        let b = run(&s).unwrap();
        assert!(a.passed(), "unexpected violations: {:?}", a.violations);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.snapshot_json, b.snapshot_json);
        assert_eq!(a.render_json(), b.render_json());
        assert!(a.render_table().contains("expect: PASS"));
    }

    #[test]
    fn every_entrant_runs_the_same_scenario() {
        for entrant in Entrant::ALL {
            let mut s = demo("");
            s.entrant = entrant;
            // Write-invalidate maintains t = 1, not the default t = 2.
            s.expect.min_valid_holders = Some(entrant.t());
            let report = run(&s).unwrap();
            assert!(
                report.passed(),
                "{}: {:?}",
                entrant.as_str(),
                report.violations
            );
            assert_eq!(report.requests, 30);
        }
    }

    #[test]
    fn ratio_ceiling_is_audited_against_opt() {
        let s = demo("max_ratio_vs_opt = 50.0\n");
        let report = run(&s).unwrap();
        assert!(report.passed(), "{:?}", report.violations);
        assert!(report.opt_cost.is_some());
        let tight = demo("max_ratio_vs_opt = 1.0\n");
        let report = run(&tight).unwrap();
        // DA on a mixed workload is not optimal; the 1.0 ceiling must trip.
        assert!(!report.passed());
        assert!(report.violations[0].contains("ratio vs OPT"));
    }

    #[test]
    fn golden_mismatch_is_a_violation() {
        let mut s = demo("");
        s.golden = Some("0x0000000000000000".to_string());
        let report = run(&s).unwrap();
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("pinned golden")));
        // Re-pin with the measured digest: the run must now pass.
        s.golden = Some(report.digest.clone());
        assert!(run(&s).unwrap().passed());
    }

    #[test]
    fn faults_flow_into_the_engine_and_the_drop_ceiling() {
        let lossy = demo("")
            .to_toml()
            .replace(
                "[expect]",
                "[[fault]]\nkind = \"drop\"\nwindow = [0, 40]\nbudget = 2\n\n[expect]",
            )
            .replace("max_dropped_messages = 0", "max_dropped_messages = 2");
        let s = Scenario::parse(&lossy).unwrap();
        let report = run(&s).unwrap();
        assert!(report.dropped_messages > 0, "drop rule never fired");
        assert!(
            report
                .violations
                .iter()
                .all(|v| !v.contains("dropped_messages")),
            "{:?}",
            report.violations
        );
        let strict = Scenario::parse(
            &s.to_toml()
                .replace("max_dropped_messages = 2", "max_dropped_messages = 0"),
        )
        .unwrap();
        let report = run(&strict).unwrap();
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("dropped_messages")));
    }
}

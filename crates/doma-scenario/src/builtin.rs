//! The builtin scenario library: named, replayable workload
//! configurations embedded in the crate (`scenarios/*.toml`), each
//! pinning a golden obs digest. `domactl scenario <name>` runs them by
//! name; the conformance-wall tests replay every one and compare the
//! measured digest against the pin.

use crate::model::Scenario;
use crate::ScenarioError;

/// `(name, TOML text)` for every builtin, in a fixed alphabetical order.
pub const BUILTINS: &[(&str, &str)] = &[
    (
        "append-only-6-2",
        include_str!("../scenarios/append-only-6-2.toml"),
    ),
    (
        "append-phase-change",
        include_str!("../scenarios/append-phase-change.toml"),
    ),
    (
        "chaotic-phase-change",
        include_str!("../scenarios/chaotic-phase-change.toml"),
    ),
    (
        "diurnal-drift",
        include_str!("../scenarios/diurnal-drift.toml"),
    ),
    ("flash-crowd", include_str!("../scenarios/flash-crowd.toml")),
    (
        "hot-set-rotation",
        include_str!("../scenarios/hot-set-rotation.toml"),
    ),
    (
        "hotspot-phase-change",
        include_str!("../scenarios/hotspot-phase-change.toml"),
    ),
    (
        "jittery-uplink",
        include_str!("../scenarios/jittery-uplink.toml"),
    ),
    (
        "mobile-handoff",
        include_str!("../scenarios/mobile-handoff.toml"),
    ),
    (
        "mobile-phase-change",
        include_str!("../scenarios/mobile-phase-change.toml"),
    ),
    (
        "standing-order",
        include_str!("../scenarios/standing-order.toml"),
    ),
    (
        "trace-replay",
        include_str!("../scenarios/trace-replay.toml"),
    ),
    (
        "uniform-phase-change",
        include_str!("../scenarios/uniform-phase-change.toml"),
    ),
    (
        "zipf-phase-change",
        include_str!("../scenarios/zipf-phase-change.toml"),
    ),
];

/// Every builtin scenario name, in listing order.
pub fn names() -> Vec<&'static str> {
    BUILTINS.iter().map(|(name, _)| *name).collect()
}

/// The raw TOML text of a builtin, if the name is known.
pub fn source(name: &str) -> Option<&'static str> {
    BUILTINS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, src)| *src)
}

/// Parses and validates a builtin scenario by name.
pub fn load(name: &str) -> Result<Scenario, ScenarioError> {
    let src = source(name).ok_or_else(|| {
        ScenarioError::msg(format!(
            "unknown builtin scenario '{name}' (known: {})",
            names().join(", ")
        ))
    })?;
    Scenario::parse(src)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_ships_at_least_twelve_scenarios() {
        assert!(BUILTINS.len() >= 12, "only {} builtins", BUILTINS.len());
    }

    #[test]
    fn every_builtin_parses_and_matches_its_filename() {
        for (name, _) in BUILTINS {
            let scenario = load(name).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(&scenario.name, name, "file name and scenario name differ");
            assert!(
                scenario.golden.is_some(),
                "{name}: builtin scenarios must pin a golden digest"
            );
            assert!(
                !scenario.description.is_empty(),
                "{name}: empty description"
            );
        }
    }

    #[test]
    fn builtin_names_are_sorted_and_unique() {
        let names = names();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(names, sorted, "BUILTINS must stay sorted and unique");
    }

    #[test]
    fn unknown_names_are_rejected_with_the_roster() {
        let e = load("no-such-scenario").unwrap_err();
        assert!(e.to_string().contains("unknown builtin"));
        assert!(e.to_string().contains("append-only-6-2"));
    }

    #[test]
    fn every_tournament_workload_has_a_phase_change_variant() {
        for workload in ["uniform", "zipf", "hotspot", "chaotic", "mobile", "append"] {
            let name = format!("{workload}-phase-change");
            assert!(
                names().iter().any(|n| *n == name),
                "missing phase-change variant for {workload}"
            );
        }
    }
}

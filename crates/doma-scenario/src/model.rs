//! The typed scenario model: what a scenario file *means* once parsed.
//!
//! [`Scenario::parse`] turns TOML-subset text into a fully validated
//! scenario (every range and cross-field constraint checked, every error
//! carrying the offending source line); [`Scenario::to_toml`] is the
//! deterministic inverse — `parse(to_toml(s)) == s` for every valid
//! scenario, a property the test wall checks with random configs.

use crate::toml::{self, Entry, Table, Value};
use crate::ScenarioError;
use doma_core::MAX_PROCESSORS;

/// The seven tournament entrants a scenario may put under test. Names
/// match the tournament roster and the obs `algo` metric labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Entrant {
    /// Static allocation (read-one-write-all over a fixed scheme).
    Sa,
    /// Dynamic allocation (core + floater).
    Da,
    /// Sliding-window convergent allocation.
    Convergent,
    /// CDVM-style write-invalidate caching (t = 1).
    WriteInvalidate,
    /// Cost-oblivious reallocation.
    CostOblivious,
    /// Mobile-resource mirroring.
    MobileMirror,
    /// Clustering-based fragment allocation.
    Clustered,
}

impl Entrant {
    /// Every entrant, in tournament roster order.
    pub const ALL: [Entrant; 7] = [
        Entrant::Sa,
        Entrant::Da,
        Entrant::Convergent,
        Entrant::WriteInvalidate,
        Entrant::CostOblivious,
        Entrant::MobileMirror,
        Entrant::Clustered,
    ];

    /// The roster spelling of the entrant name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Entrant::Sa => "sa",
            Entrant::Da => "da",
            Entrant::Convergent => "convergent",
            Entrant::WriteInvalidate => "write-invalidate",
            Entrant::CostOblivious => "cost-oblivious",
            Entrant::MobileMirror => "mobile-mirror",
            Entrant::Clustered => "clustered",
        }
    }

    /// Parses a roster name.
    pub fn from_name(name: &str) -> Option<Self> {
        Entrant::ALL.into_iter().find(|e| e.as_str() == name)
    }

    /// The availability threshold the entrant maintains.
    pub fn t(&self) -> usize {
        match self {
            Entrant::WriteInvalidate => 1,
            _ => 2,
        }
    }
}

/// The request mix of one phase.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// I.i.d. uniform requests with a read fraction.
    Uniform {
        /// Probability a request is a read.
        read_fraction: f64,
    },
    /// Zipf-skewed issuers.
    Zipf {
        /// Skew exponent (0 = uniform).
        theta: f64,
        /// Probability a request is a read.
        read_fraction: f64,
    },
    /// A relocating read hotspot (§5.1 regular patterns).
    Hotspot {
        /// Requests between hotspot relocations.
        phase_len: usize,
        /// Probability a request comes from the hotspot.
        hot_prob: f64,
    },
    /// Freshly re-randomized weights every few requests (§5.1 chaotic).
    Chaotic {
        /// Requests between weight redraws.
        redraw_every: usize,
    },
    /// The §1.1/§2 mobile location-object scenario.
    Mobile {
        /// Number of cells the user roams between.
        cells: usize,
        /// Number of stationary callers.
        callers: usize,
        /// Probability the user moves before a request.
        move_prob: f64,
        /// Probability a request is a read (a call lookup).
        read_fraction: f64,
    },
    /// The §6.2 append-only/standing-order model.
    AppendOnly {
        /// Earth stations generating new versions.
        generators: usize,
        /// Mean reads issued per generated version.
        reads_per_write: f64,
    },
    /// Verbatim replay of an inline trace (the paper's `r<i>`/`w<i>`
    /// notation).
    Trace {
        /// The trace text; length comes from the token count.
        text: String,
    },
}

impl WorkloadSpec {
    /// The workload's name as written in scenario files.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadSpec::Uniform { .. } => "uniform",
            WorkloadSpec::Zipf { .. } => "zipf",
            WorkloadSpec::Hotspot { .. } => "hotspot",
            WorkloadSpec::Chaotic { .. } => "chaotic",
            WorkloadSpec::Mobile { .. } => "mobile",
            WorkloadSpec::AppendOnly { .. } => "append-only",
            WorkloadSpec::Trace { .. } => "trace",
        }
    }
}

/// One phase of the scenario's request mix.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// A short label ("morning", "flash", …).
    pub name: String,
    /// Requests generated in this phase (0 for trace phases, whose
    /// length is the trace's token count).
    pub len: usize,
    /// The phase's generator.
    pub workload: WorkloadSpec,
}

/// What a fault rule does to matched messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Messages vanish in transit.
    Drop,
    /// Delivery postponed by `amount` ticks.
    Delay,
    /// Delivered twice, the copy `amount` ticks late.
    Duplicate,
    /// Random extra delay in `0..=amount` (reordering).
    Jitter,
    /// A network partition separating `side` from the rest.
    Partition,
}

impl FaultKind {
    /// The scenario-file spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Delay => "delay",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Jitter => "jitter",
            FaultKind::Partition => "partition",
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        [
            FaultKind::Drop,
            FaultKind::Delay,
            FaultKind::Duplicate,
            FaultKind::Jitter,
            FaultKind::Partition,
        ]
        .into_iter()
        .find(|k| k.as_str() == name)
    }
}

/// Message-kind filter for fault rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgFilter {
    /// Only control messages.
    Control,
    /// Only data messages.
    Data,
}

impl MsgFilter {
    /// The scenario-file spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            MsgFilter::Control => "control",
            MsgFilter::Data => "data",
        }
    }
}

/// One declarative fault: a message-fault rule or a partition.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// What the fault does.
    pub kind: FaultKind,
    /// Tick window `[start, end)` during which the fault is armed
    /// (required for partitions; rules default to always-armed).
    pub window: Option<(u64, u64)>,
    /// Only messages sent by this node (rules only).
    pub from: Option<usize>,
    /// Only messages destined for this node (rules only).
    pub to: Option<usize>,
    /// Only messages of this kind (rules only).
    pub msg: Option<MsgFilter>,
    /// Probability the rule fires on a match (rules only).
    pub probability: f64,
    /// Maximum number of firings (rules only).
    pub budget: Option<u64>,
    /// Ticks of delay / duplicate lag / jitter bound (kind-dependent).
    pub amount: u64,
    /// One side of the cut (partitions only).
    pub side: Vec<usize>,
}

/// The expected-invariant block checked after the run.
#[derive(Debug, Clone, PartialEq)]
pub struct Expect {
    /// Ceiling on `algo_cost / OPT` under the scenario's model.
    pub max_ratio_vs_opt: Option<f64>,
    /// Floor on valid replicas at quiescence (t-availability).
    pub min_valid_holders: Option<usize>,
    /// Ceiling on the obs `protocol/scheme_churn` counter.
    pub max_scheme_churn: Option<u64>,
    /// Ceiling on messages lost to faults (0 for failure-free runs).
    pub max_dropped_messages: u64,
    /// Exact number of completed reads, when pinned.
    pub reads_completed: Option<u64>,
    /// Whether the obs registry's summed `protocol/cost.*` counters must
    /// equal the simulator's exact tallies.
    pub obs_parity: bool,
}

impl Default for Expect {
    fn default() -> Self {
        Expect {
            max_ratio_vs_opt: None,
            min_valid_holders: None,
            max_scheme_churn: None,
            max_dropped_messages: 0,
            reads_completed: None,
            obs_parity: true,
        }
    }
}

/// A fully validated scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (builtins are addressed by it).
    pub name: String,
    /// One-line description.
    pub description: String,
    /// Processors in the simulated cluster.
    pub n: usize,
    /// Master seed: phase generators and fault streams derive from it.
    pub seed: u64,
    /// The allocator under test.
    pub entrant: Entrant,
    /// Obs event-log capacity.
    pub events: usize,
    /// `"sc"` (stationary, cio > 0) or `"mc"` (mobile, cio = 0).
    pub environment: String,
    /// Control-message unit cost.
    pub cc: f64,
    /// Data-message unit cost.
    pub cd: f64,
    /// The phases, executed in order.
    pub phases: Vec<Phase>,
    /// Declarative faults (empty = failure-free).
    pub faults: Vec<FaultSpec>,
    /// The expected-invariant block.
    pub expect: Expect,
    /// Pinned golden obs digest (`"0x…"`, 16 hex digits), if any.
    pub golden: Option<String>,
}

const SCENARIO_KEYS: &[&str] = &["name", "description", "n", "seed", "entrant", "events"];
const MODEL_KEYS: &[&str] = &["environment", "cc", "cd"];
const PHASE_COMMON_KEYS: &[&str] = &["name", "workload", "len"];
const FAULT_KEYS: &[&str] = &[
    "kind",
    "window",
    "from",
    "to",
    "msg",
    "probability",
    "budget",
    "amount",
    "side",
];
const EXPECT_KEYS: &[&str] = &[
    "max_ratio_vs_opt",
    "min_valid_holders",
    "max_scheme_churn",
    "max_dropped_messages",
    "reads_completed",
    "obs_parity",
];

fn fail(line: usize, message: impl Into<String>) -> ScenarioError {
    ScenarioError::at(line, message)
}

fn check_keys(table: &Table, allowed: &[&str]) -> Result<(), ScenarioError> {
    for entry in &table.entries {
        if !allowed.contains(&entry.key.as_str()) {
            return Err(fail(
                entry.line,
                format!(
                    "unknown key '{}' in [{}] (allowed: {})",
                    entry.key,
                    table.name,
                    allowed.join(", ")
                ),
            ));
        }
    }
    Ok(())
}

fn required<'a>(table: &'a Table, key: &str) -> Result<&'a Entry, ScenarioError> {
    table
        .get(key)
        .ok_or_else(|| fail(table.line, format!("[{}] is missing '{key}'", table.name)))
}

fn as_str(entry: &Entry) -> Result<&str, ScenarioError> {
    match &entry.value {
        Value::Str(s) => Ok(s),
        other => Err(fail(
            entry.line,
            format!("'{}' must be a string, got {}", entry.key, other.kind()),
        )),
    }
}

fn as_u64(entry: &Entry) -> Result<u64, ScenarioError> {
    match entry.value {
        Value::Int(v) if v >= 0 => Ok(v as u64),
        _ => Err(fail(
            entry.line,
            format!(
                "'{}' must be a non-negative integer, got {}",
                entry.key,
                entry.value.kind()
            ),
        )),
    }
}

fn as_usize(entry: &Entry) -> Result<usize, ScenarioError> {
    Ok(as_u64(entry)? as usize)
}

fn as_f64(entry: &Entry) -> Result<f64, ScenarioError> {
    match entry.value {
        Value::Float(v) => Ok(v),
        Value::Int(v) => Ok(v as f64),
        _ => Err(fail(
            entry.line,
            format!(
                "'{}' must be a number, got {}",
                entry.key,
                entry.value.kind()
            ),
        )),
    }
}

fn as_bool(entry: &Entry) -> Result<bool, ScenarioError> {
    match entry.value {
        Value::Bool(v) => Ok(v),
        _ => Err(fail(
            entry.line,
            format!(
                "'{}' must be a boolean, got {}",
                entry.key,
                entry.value.kind()
            ),
        )),
    }
}

fn as_window(entry: &Entry) -> Result<(u64, u64), ScenarioError> {
    let items = match &entry.value {
        Value::Array(items) if items.len() == 2 => items,
        _ => {
            return Err(fail(
                entry.line,
                format!("'{}' must be a two-element array [start, end]", entry.key),
            ))
        }
    };
    let bound = |v: &Value| match v {
        Value::Int(i) if *i >= 0 => Ok(*i as u64),
        _ => Err(fail(
            entry.line,
            format!("'{}' bounds must be non-negative integers", entry.key),
        )),
    };
    let (start, end) = (bound(&items[0])?, bound(&items[1])?);
    if start >= end {
        return Err(fail(
            entry.line,
            format!("'{}' window is empty ({start} >= {end})", entry.key),
        ));
    }
    Ok((start, end))
}

fn as_usize_array(entry: &Entry) -> Result<Vec<usize>, ScenarioError> {
    let items = match &entry.value {
        Value::Array(items) => items,
        _ => {
            return Err(fail(
                entry.line,
                format!("'{}' must be an array of processor indices", entry.key),
            ))
        }
    };
    items
        .iter()
        .map(|v| match v {
            Value::Int(i) if *i >= 0 => Ok(*i as usize),
            _ => Err(fail(
                entry.line,
                format!("'{}' entries must be non-negative integers", entry.key),
            )),
        })
        .collect()
}

fn fraction(entry: &Entry) -> Result<f64, ScenarioError> {
    let v = as_f64(entry)?;
    if !(0.0..=1.0).contains(&v) {
        return Err(fail(
            entry.line,
            format!("'{}' must be in [0, 1], got {v}", entry.key),
        ));
    }
    Ok(v)
}

fn parse_phase(table: &Table, n: usize) -> Result<Phase, ScenarioError> {
    let name = as_str(required(table, "name")?)?.to_string();
    let kind_entry = required(table, "workload")?;
    let kind = as_str(kind_entry)?;
    let mut allowed: Vec<&str> = PHASE_COMMON_KEYS.to_vec();
    let workload = match kind {
        "uniform" => {
            allowed.push("read_fraction");
            WorkloadSpec::Uniform {
                read_fraction: fraction(required(table, "read_fraction")?)?,
            }
        }
        "zipf" => {
            allowed.extend(["theta", "read_fraction"]);
            let theta_entry = required(table, "theta")?;
            let theta = as_f64(theta_entry)?;
            if !theta.is_finite() || theta < 0.0 {
                return Err(fail(theta_entry.line, "'theta' must be >= 0"));
            }
            WorkloadSpec::Zipf {
                theta,
                read_fraction: fraction(required(table, "read_fraction")?)?,
            }
        }
        "hotspot" => {
            allowed.extend(["phase_len", "hot_prob"]);
            let pl_entry = required(table, "phase_len")?;
            let phase_len = as_usize(pl_entry)?;
            if phase_len == 0 {
                return Err(fail(pl_entry.line, "'phase_len' must be >= 1"));
            }
            WorkloadSpec::Hotspot {
                phase_len,
                hot_prob: fraction(required(table, "hot_prob")?)?,
            }
        }
        "chaotic" => {
            allowed.push("redraw_every");
            let re_entry = required(table, "redraw_every")?;
            let redraw_every = as_usize(re_entry)?;
            if redraw_every == 0 {
                return Err(fail(re_entry.line, "'redraw_every' must be >= 1"));
            }
            WorkloadSpec::Chaotic { redraw_every }
        }
        "mobile" => {
            allowed.extend(["cells", "callers", "move_prob", "read_fraction"]);
            let cells_entry = required(table, "cells")?;
            let cells = as_usize(cells_entry)?;
            let callers_entry = required(table, "callers")?;
            let callers = as_usize(callers_entry)?;
            if cells == 0 || callers == 0 {
                return Err(fail(cells_entry.line, "'cells' and 'callers' must be >= 1"));
            }
            if 1 + cells + callers > n {
                return Err(fail(
                    cells_entry.line,
                    format!(
                        "mobile universe 1 + {cells} cells + {callers} callers exceeds n = {n}"
                    ),
                ));
            }
            WorkloadSpec::Mobile {
                cells,
                callers,
                move_prob: fraction(required(table, "move_prob")?)?,
                read_fraction: fraction(required(table, "read_fraction")?)?,
            }
        }
        "append-only" => {
            allowed.extend(["generators", "reads_per_write"]);
            let gen_entry = required(table, "generators")?;
            let generators = as_usize(gen_entry)?;
            if generators == 0 || generators > n {
                return Err(fail(
                    gen_entry.line,
                    format!("'generators' must be in 1..={n}"),
                ));
            }
            let rpw_entry = required(table, "reads_per_write")?;
            let reads_per_write = as_f64(rpw_entry)?;
            if !reads_per_write.is_finite() || reads_per_write < 0.0 {
                return Err(fail(rpw_entry.line, "'reads_per_write' must be >= 0"));
            }
            WorkloadSpec::AppendOnly {
                generators,
                reads_per_write,
            }
        }
        "trace" => {
            allowed.push("trace");
            let trace_entry = required(table, "trace")?;
            let text = as_str(trace_entry)?.to_string();
            let schedule = doma_workload::trace::read_trace(text.as_bytes())
                .map_err(|e| fail(trace_entry.line, format!("bad trace: {e}")))?;
            if schedule.min_processors() > n {
                return Err(fail(
                    trace_entry.line,
                    format!(
                        "trace uses {} processors but n = {n}",
                        schedule.min_processors()
                    ),
                ));
            }
            if table.get("len").is_some() {
                return Err(fail(
                    table.get("len").map(|e| e.line).unwrap_or(table.line),
                    "trace phases take their length from the trace text; drop 'len'",
                ));
            }
            WorkloadSpec::Trace { text }
        }
        other => {
            return Err(fail(
                kind_entry.line,
                format!(
                    "unknown workload '{other}' (expected uniform, zipf, hotspot, \
                     chaotic, mobile, append-only or trace)"
                ),
            ))
        }
    };
    let len = match &workload {
        WorkloadSpec::Trace { .. } => 0,
        _ => {
            let len_entry = required(table, "len")?;
            let len = as_usize(len_entry)?;
            if len == 0 {
                return Err(fail(len_entry.line, "'len' must be >= 1"));
            }
            len
        }
    };
    check_keys(table, &allowed)?;
    Ok(Phase {
        name,
        len,
        workload,
    })
}

fn parse_fault(table: &Table, n: usize) -> Result<FaultSpec, ScenarioError> {
    check_keys(table, FAULT_KEYS)?;
    let kind_entry = required(table, "kind")?;
    let kind = FaultKind::from_name(as_str(kind_entry)?).ok_or_else(|| {
        fail(
            kind_entry.line,
            format!(
                "unknown fault kind '{}' (expected drop, delay, duplicate, jitter or partition)",
                as_str(kind_entry).unwrap_or_default()
            ),
        )
    })?;
    let window = table.get("window").map(as_window).transpose()?;
    let node = |key: &str| -> Result<Option<usize>, ScenarioError> {
        match table.get(key) {
            None => Ok(None),
            Some(entry) => {
                let v = as_usize(entry)?;
                if v >= n {
                    return Err(fail(
                        entry.line,
                        format!("'{key}' node {v} outside cluster of {n}"),
                    ));
                }
                Ok(Some(v))
            }
        }
    };
    let spec = FaultSpec {
        kind,
        window,
        from: node("from")?,
        to: node("to")?,
        msg: match table.get("msg") {
            None => None,
            Some(entry) => Some(match as_str(entry)? {
                "control" => MsgFilter::Control,
                "data" => MsgFilter::Data,
                other => {
                    return Err(fail(
                        entry.line,
                        format!("'msg' must be control or data, got '{other}'"),
                    ))
                }
            }),
        },
        probability: match table.get("probability") {
            None => 1.0,
            Some(entry) => fraction(entry)?,
        },
        budget: table.get("budget").map(as_u64).transpose()?,
        amount: table.get("amount").map(as_u64).transpose()?.unwrap_or(0),
        side: match table.get("side") {
            None => Vec::new(),
            Some(entry) => {
                let side = as_usize_array(entry)?;
                if let Some(&bad) = side.iter().find(|&&p| p >= n) {
                    return Err(fail(
                        entry.line,
                        format!("'side' node {bad} outside cluster of {n}"),
                    ));
                }
                side
            }
        },
    };
    match kind {
        FaultKind::Partition => {
            if spec.window.is_none() {
                return Err(fail(table.line, "partitions require a 'window'"));
            }
            if spec.side.is_empty() {
                return Err(fail(table.line, "partitions require a non-empty 'side'"));
            }
            for key in ["from", "to", "msg", "probability", "budget", "amount"] {
                if let Some(entry) = table.get(key) {
                    return Err(fail(
                        entry.line,
                        format!("'{key}' does not apply to partitions"),
                    ));
                }
            }
        }
        FaultKind::Delay | FaultKind::Duplicate | FaultKind::Jitter => {
            if table.get("amount").is_none() {
                return Err(fail(
                    table.line,
                    format!("'{}' faults require an 'amount' of ticks", kind.as_str()),
                ));
            }
            if !spec.side.is_empty() {
                return Err(fail(table.line, "'side' only applies to partitions"));
            }
        }
        FaultKind::Drop => {
            if table.get("amount").is_some() {
                return Err(fail(table.line, "'amount' does not apply to drop faults"));
            }
            if !spec.side.is_empty() {
                return Err(fail(table.line, "'side' only applies to partitions"));
            }
        }
    }
    Ok(spec)
}

fn parse_expect(table: &Table, n: usize) -> Result<Expect, ScenarioError> {
    check_keys(table, EXPECT_KEYS)?;
    let mut expect = Expect::default();
    if let Some(entry) = table.get("max_ratio_vs_opt") {
        let v = as_f64(entry)?;
        if !v.is_finite() || v < 1.0 {
            return Err(fail(entry.line, "'max_ratio_vs_opt' must be >= 1"));
        }
        expect.max_ratio_vs_opt = Some(v);
    }
    if let Some(entry) = table.get("min_valid_holders") {
        let v = as_usize(entry)?;
        if v > n {
            return Err(fail(
                entry.line,
                format!("'min_valid_holders' {v} exceeds n = {n}"),
            ));
        }
        expect.min_valid_holders = Some(v);
    }
    expect.max_scheme_churn = table.get("max_scheme_churn").map(as_u64).transpose()?;
    if let Some(entry) = table.get("max_dropped_messages") {
        expect.max_dropped_messages = as_u64(entry)?;
    }
    expect.reads_completed = table.get("reads_completed").map(as_u64).transpose()?;
    if let Some(entry) = table.get("obs_parity") {
        expect.obs_parity = as_bool(entry)?;
    }
    Ok(expect)
}

impl Scenario {
    /// Parses and validates scenario text. Every error carries the
    /// offending 1-indexed source line.
    pub fn parse(src: &str) -> Result<Scenario, ScenarioError> {
        let doc = toml::parse(src)?;
        for table in &doc.tables {
            match table.name.as_str() {
                "scenario" | "model" | "expect" | "golden" => {
                    if table.is_array {
                        return Err(fail(
                            table.line,
                            format!("[{}] is a single table, not [[{}]]", table.name, table.name),
                        ));
                    }
                }
                "phase" | "fault" => {
                    if !table.is_array {
                        return Err(fail(
                            table.line,
                            format!("[{}] must use the [[{}]] form", table.name, table.name),
                        ));
                    }
                }
                other => {
                    return Err(fail(
                        table.line,
                        format!(
                            "unknown table [{other}] (expected scenario, model, phase, \
                             fault, expect or golden)"
                        ),
                    ))
                }
            }
        }

        let scenario = doc
            .table("scenario")
            .ok_or_else(|| fail(1, "missing [scenario] table"))?;
        check_keys(scenario, SCENARIO_KEYS)?;
        let name = as_str(required(scenario, "name")?)?.to_string();
        if name.is_empty() {
            return Err(fail(scenario.line, "'name' must be non-empty"));
        }
        let description = as_str(required(scenario, "description")?)?.to_string();
        let n_entry = required(scenario, "n")?;
        let n = as_usize(n_entry)?;
        if !(3..=MAX_PROCESSORS).contains(&n) {
            return Err(fail(
                n_entry.line,
                format!("'n' must be in 3..={MAX_PROCESSORS}, got {n}"),
            ));
        }
        let seed = as_u64(required(scenario, "seed")?)?;
        let entrant_entry = required(scenario, "entrant")?;
        let entrant = Entrant::from_name(as_str(entrant_entry)?).ok_or_else(|| {
            fail(
                entrant_entry.line,
                format!(
                    "unknown entrant '{}' (expected one of: {})",
                    as_str(entrant_entry).unwrap_or_default(),
                    Entrant::ALL.map(|e| e.as_str()).join(", ")
                ),
            )
        })?;
        let events = match scenario.get("events") {
            None => 512,
            Some(entry) => {
                let v = as_usize(entry)?;
                if v == 0 {
                    return Err(fail(entry.line, "'events' must be >= 1"));
                }
                v
            }
        };

        let model = doc
            .table("model")
            .ok_or_else(|| fail(1, "missing [model] table"))?;
        check_keys(model, MODEL_KEYS)?;
        let env_entry = required(model, "environment")?;
        let environment = as_str(env_entry)?.to_string();
        if environment != "sc" && environment != "mc" {
            return Err(fail(
                env_entry.line,
                format!("'environment' must be sc or mc, got '{environment}'"),
            ));
        }
        let unit_cost = |key: &str| -> Result<f64, ScenarioError> {
            let entry = required(model, key)?;
            let v = as_f64(entry)?;
            if !v.is_finite() || v <= 0.0 {
                return Err(fail(entry.line, format!("'{key}' must be > 0")));
            }
            Ok(v)
        };
        let (cc, cd) = (unit_cost("cc")?, unit_cost("cd")?);

        let phases: Vec<Phase> = doc
            .tables_named("phase")
            .map(|t| parse_phase(t, n))
            .collect::<Result<_, _>>()?;
        if phases.is_empty() {
            return Err(fail(
                scenario.line,
                "a scenario needs at least one [[phase]]",
            ));
        }
        let faults: Vec<FaultSpec> = doc
            .tables_named("fault")
            .map(|t| parse_fault(t, n))
            .collect::<Result<_, _>>()?;

        let expect = match doc.table("expect") {
            Some(table) => parse_expect(table, n)?,
            None => return Err(fail(scenario.line, "missing [expect] table")),
        };

        let golden = match doc.table("golden") {
            None => None,
            Some(table) => {
                check_keys(table, &["digest"])?;
                let entry = required(table, "digest")?;
                let digest = as_str(entry)?.to_string();
                let hex = digest.strip_prefix("0x").unwrap_or("");
                if hex.len() != 16 || !hex.chars().all(|c| c.is_ascii_hexdigit()) {
                    return Err(fail(
                        entry.line,
                        "'digest' must be 0x followed by 16 hex digits",
                    ));
                }
                Some(digest)
            }
        };

        Ok(Scenario {
            name,
            description,
            n,
            seed,
            entrant,
            events,
            environment,
            cc,
            cd,
            phases,
            faults,
            expect,
            golden,
        })
    }

    /// Total scheduled request count across phases (trace phases count
    /// their token length).
    pub fn total_len(&self) -> usize {
        self.phases
            .iter()
            .map(|p| match &p.workload {
                WorkloadSpec::Trace { text } => doma_workload::trace::read_trace(text.as_bytes())
                    .map(|s| s.len())
                    .unwrap_or(0),
                _ => p.len,
            })
            .sum()
    }

    /// Serializes the scenario back to its canonical TOML-subset text.
    /// `parse(to_toml(s)) == s` for every valid scenario.
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        let esc = toml::escape;
        out.push_str("[scenario]\n");
        out.push_str(&format!("name = {}\n", esc(&self.name)));
        out.push_str(&format!("description = {}\n", esc(&self.description)));
        out.push_str(&format!("n = {}\n", self.n));
        out.push_str(&format!("seed = {}\n", self.seed));
        out.push_str(&format!("entrant = {}\n", esc(self.entrant.as_str())));
        out.push_str(&format!("events = {}\n", self.events));
        out.push_str("\n[model]\n");
        out.push_str(&format!("environment = {}\n", esc(&self.environment)));
        out.push_str(&format!("cc = {}\n", self.cc));
        out.push_str(&format!("cd = {}\n", self.cd));
        for phase in &self.phases {
            out.push_str("\n[[phase]]\n");
            out.push_str(&format!("name = {}\n", esc(&phase.name)));
            out.push_str(&format!("workload = {}\n", esc(phase.workload.name())));
            if !matches!(phase.workload, WorkloadSpec::Trace { .. }) {
                out.push_str(&format!("len = {}\n", phase.len));
            }
            match &phase.workload {
                WorkloadSpec::Uniform { read_fraction } => {
                    out.push_str(&format!("read_fraction = {read_fraction}\n"));
                }
                WorkloadSpec::Zipf {
                    theta,
                    read_fraction,
                } => {
                    out.push_str(&format!("theta = {theta}\n"));
                    out.push_str(&format!("read_fraction = {read_fraction}\n"));
                }
                WorkloadSpec::Hotspot {
                    phase_len,
                    hot_prob,
                } => {
                    out.push_str(&format!("phase_len = {phase_len}\n"));
                    out.push_str(&format!("hot_prob = {hot_prob}\n"));
                }
                WorkloadSpec::Chaotic { redraw_every } => {
                    out.push_str(&format!("redraw_every = {redraw_every}\n"));
                }
                WorkloadSpec::Mobile {
                    cells,
                    callers,
                    move_prob,
                    read_fraction,
                } => {
                    out.push_str(&format!("cells = {cells}\n"));
                    out.push_str(&format!("callers = {callers}\n"));
                    out.push_str(&format!("move_prob = {move_prob}\n"));
                    out.push_str(&format!("read_fraction = {read_fraction}\n"));
                }
                WorkloadSpec::AppendOnly {
                    generators,
                    reads_per_write,
                } => {
                    out.push_str(&format!("generators = {generators}\n"));
                    out.push_str(&format!("reads_per_write = {reads_per_write}\n"));
                }
                WorkloadSpec::Trace { text } => {
                    out.push_str(&format!("trace = {}\n", esc(text)));
                }
            }
        }
        for fault in &self.faults {
            out.push_str("\n[[fault]]\n");
            out.push_str(&format!("kind = {}\n", esc(fault.kind.as_str())));
            if let Some((start, end)) = fault.window {
                out.push_str(&format!("window = [{start}, {end}]\n"));
            }
            if fault.kind == FaultKind::Partition {
                let side: Vec<String> = fault.side.iter().map(|p| p.to_string()).collect();
                out.push_str(&format!("side = [{}]\n", side.join(", ")));
            } else {
                if let Some(from) = fault.from {
                    out.push_str(&format!("from = {from}\n"));
                }
                if let Some(to) = fault.to {
                    out.push_str(&format!("to = {to}\n"));
                }
                if let Some(msg) = fault.msg {
                    out.push_str(&format!("msg = {}\n", esc(msg.as_str())));
                }
                out.push_str(&format!("probability = {}\n", fault.probability));
                if let Some(budget) = fault.budget {
                    out.push_str(&format!("budget = {budget}\n"));
                }
                if fault.kind != FaultKind::Drop {
                    out.push_str(&format!("amount = {}\n", fault.amount));
                }
            }
        }
        out.push_str("\n[expect]\n");
        if let Some(v) = self.expect.max_ratio_vs_opt {
            out.push_str(&format!("max_ratio_vs_opt = {v}\n"));
        }
        if let Some(v) = self.expect.min_valid_holders {
            out.push_str(&format!("min_valid_holders = {v}\n"));
        }
        if let Some(v) = self.expect.max_scheme_churn {
            out.push_str(&format!("max_scheme_churn = {v}\n"));
        }
        out.push_str(&format!(
            "max_dropped_messages = {}\n",
            self.expect.max_dropped_messages
        ));
        if let Some(v) = self.expect.reads_completed {
            out.push_str(&format!("reads_completed = {v}\n"));
        }
        out.push_str(&format!("obs_parity = {}\n", self.expect.obs_parity));
        if let Some(digest) = &self.golden {
            out.push_str("\n[golden]\n");
            out.push_str(&format!("digest = {}\n", esc(digest)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> String {
        "[scenario]\n\
         name = \"demo\"\n\
         description = \"a demo\"\n\
         n = 6\n\
         seed = 7\n\
         entrant = \"sa\"\n\
         [model]\n\
         environment = \"sc\"\n\
         cc = 0.25\n\
         cd = 1.0\n\
         [[phase]]\n\
         name = \"steady\"\n\
         workload = \"uniform\"\n\
         len = 20\n\
         read_fraction = 0.7\n\
         [expect]\n\
         max_dropped_messages = 0\n"
            .to_string()
    }

    #[test]
    fn minimal_scenario_parses_with_defaults() {
        let s = Scenario::parse(&minimal()).unwrap();
        assert_eq!(s.name, "demo");
        assert_eq!(s.entrant, Entrant::Sa);
        assert_eq!(s.events, 512);
        assert_eq!(s.phases.len(), 1);
        assert!(s.faults.is_empty());
        assert!(s.expect.obs_parity);
        assert_eq!(s.golden, None);
        assert_eq!(s.total_len(), 20);
    }

    #[test]
    fn roundtrips_through_to_toml() {
        let s = Scenario::parse(&minimal()).unwrap();
        let again = Scenario::parse(&s.to_toml()).unwrap();
        assert_eq!(s, again);
    }

    #[test]
    fn trace_phase_takes_length_from_text() {
        let src = minimal().replace(
            "workload = \"uniform\"\n\
             len = 20\n\
             read_fraction = 0.7\n",
            "workload = \"trace\"\n\
             trace = \"r1 w2 r1 r3\"\n",
        );
        let s = Scenario::parse(&src).unwrap();
        assert_eq!(s.total_len(), 4);
        assert_eq!(Scenario::parse(&s.to_toml()).unwrap(), s);
    }

    #[test]
    fn validation_errors_point_at_lines() {
        let cases: &[(&str, &str, &str)] = &[
            ("entrant = \"sa\"", "entrant = \"zzz\"", "unknown entrant"),
            ("n = 6", "n = 2", "'n' must be in 3..=64"),
            ("n = 6", "n = 65", "'n' must be in 3..=64"),
            ("seed = 7", "seed = -1", "non-negative integer"),
            (
                "environment = \"sc\"",
                "environment = \"xy\"",
                "must be sc or mc",
            ),
            ("cc = 0.25", "cc = 0.0", "'cc' must be > 0"),
            (
                "read_fraction = 0.7",
                "read_fraction = 1.5",
                "must be in [0, 1]",
            ),
            (
                "workload = \"uniform\"",
                "workload = \"warp\"",
                "unknown workload",
            ),
            ("len = 20", "len = 0", "'len' must be >= 1"),
        ];
        for (from, to, needle) in cases {
            let src = minimal().replace(from, to);
            let e = Scenario::parse(&src).unwrap_err();
            assert!(e.line.is_some(), "{to}: expected a line number, got {e}");
            assert!(e.to_string().contains(needle), "{to}: {e}");
        }
    }

    #[test]
    fn unknown_keys_and_tables_are_rejected() {
        let e = Scenario::parse(&(minimal() + "[mystery]\nx = 1\n")).unwrap_err();
        assert!(e.to_string().contains("unknown table"), "{e}");
        let e = Scenario::parse(&minimal().replace("seed = 7", "seed = 7\nwat = 1")).unwrap_err();
        assert!(e.to_string().contains("unknown key 'wat'"), "{e}");
    }

    #[test]
    fn fault_cross_field_rules() {
        let partition_ok =
            minimal() + "[[fault]]\nkind = \"partition\"\nwindow = [5, 9]\nside = [0, 1]\n";
        let s = Scenario::parse(&partition_ok).unwrap();
        assert_eq!(s.faults.len(), 1);
        assert_eq!(Scenario::parse(&s.to_toml()).unwrap(), s);

        let missing_window = minimal() + "[[fault]]\nkind = \"partition\"\nside = [0]\n";
        assert!(Scenario::parse(&missing_window)
            .unwrap_err()
            .to_string()
            .contains("require a 'window'"));

        let delay_no_amount = minimal() + "[[fault]]\nkind = \"delay\"\n";
        assert!(Scenario::parse(&delay_no_amount)
            .unwrap_err()
            .to_string()
            .contains("require an 'amount'"));

        let drop_with_amount = minimal() + "[[fault]]\nkind = \"drop\"\namount = 3\n";
        assert!(Scenario::parse(&drop_with_amount)
            .unwrap_err()
            .to_string()
            .contains("does not apply"));

        let bad_node = minimal() + "[[fault]]\nkind = \"drop\"\nfrom = 99\n";
        assert!(Scenario::parse(&bad_node)
            .unwrap_err()
            .to_string()
            .contains("outside cluster"));
    }

    #[test]
    fn golden_digest_shape_is_enforced() {
        let good = minimal() + "[golden]\ndigest = \"0x0123456789abcdef\"\n";
        let s = Scenario::parse(&good).unwrap();
        assert_eq!(s.golden.as_deref(), Some("0x0123456789abcdef"));
        let bad = minimal() + "[golden]\ndigest = \"abc\"\n";
        assert!(Scenario::parse(&bad)
            .unwrap_err()
            .to_string()
            .contains("16 hex digits"));
    }

    #[test]
    fn mobile_universe_must_fit() {
        let src = minimal().replace(
            "workload = \"uniform\"\n\
             len = 20\n\
             read_fraction = 0.7\n",
            "workload = \"mobile\"\n\
             len = 20\n\
             cells = 4\n\
             callers = 4\n\
             move_prob = 0.3\n\
             read_fraction = 0.6\n",
        );
        assert!(Scenario::parse(&src)
            .unwrap_err()
            .to_string()
            .contains("exceeds n"));
    }
}

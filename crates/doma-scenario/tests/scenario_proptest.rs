//! Property test (satellite of the scenario-engine PR): for randomly
//! generated *valid* scenarios, `Scenario::parse(s.to_toml()) == s`, and
//! serialization is idempotent (`to_toml` of the reparse is byte-equal).
//!
//! Floats are drawn from a sixteenths grid so Rust's shortest-roundtrip
//! `Display` output re-parses to the identical bit pattern; whole-valued
//! floats print as integers and rely on the parser's int→float coercion,
//! which is exactly the corner this test exists to pin down.
//!
//! Failures print a `DOMA_PROP_SEED=…` replay line via the testkit
//! harness.

use doma_scenario::{
    Entrant, Expect, FaultKind, FaultSpec, MsgFilter, Phase, Scenario, WorkloadSpec,
};
use doma_testkit::property::{self as prop, Gen};
use doma_testkit::TestRng;

/// A float on the sixteenths grid in `(0, 1]` (never 0 so it can serve
/// as `cc`/`cd`/`probability` too).
fn frac(rng: &mut TestRng) -> f64 {
    prop::range(1u64..17).generate(rng) as f64 / 16.0
}

fn workload(rng: &mut TestRng, n: usize) -> WorkloadSpec {
    match prop::range(0usize..7).generate(rng) {
        0 => WorkloadSpec::Uniform {
            read_fraction: frac(rng),
        },
        1 => WorkloadSpec::Zipf {
            theta: frac(rng) * 2.0,
            read_fraction: frac(rng),
        },
        2 => WorkloadSpec::Hotspot {
            phase_len: prop::range(1usize..12).generate(rng),
            hot_prob: frac(rng),
        },
        3 => WorkloadSpec::Chaotic {
            redraw_every: prop::range(1usize..10).generate(rng),
        },
        4 => WorkloadSpec::Mobile {
            cells: prop::range(1usize..3).generate(rng),
            callers: prop::range(1usize..3).generate(rng),
            move_prob: frac(rng),
            read_fraction: frac(rng),
        },
        5 => WorkloadSpec::AppendOnly {
            generators: prop::range(1usize..n + 1).generate(rng),
            reads_per_write: frac(rng) * 4.0,
        },
        _ => {
            let len = prop::range(1usize..10).generate(rng);
            let tokens: Vec<String> = (0..len)
                .map(|_| {
                    let p = prop::range(0usize..n).generate(rng);
                    if prop::bools().generate(rng) {
                        format!("r{p}")
                    } else {
                        format!("w{p}")
                    }
                })
                .collect();
            WorkloadSpec::Trace {
                text: tokens.join(" "),
            }
        }
    }
}

fn fault(rng: &mut TestRng, n: usize) -> FaultSpec {
    let kind = [
        FaultKind::Drop,
        FaultKind::Delay,
        FaultKind::Duplicate,
        FaultKind::Jitter,
        FaultKind::Partition,
    ][prop::range(0usize..5).generate(rng)];
    if kind == FaultKind::Partition {
        let start = prop::range(0u64..20).generate(rng);
        let span = prop::range(1u64..40).generate(rng);
        FaultSpec {
            kind,
            window: Some((start, start + span)),
            from: None,
            to: None,
            msg: None,
            probability: 1.0,
            budget: None,
            amount: 0,
            side: vec![prop::range(0usize..n).generate(rng)],
        }
    } else {
        let window = if prop::bools().generate(rng) {
            let start = prop::range(0u64..20).generate(rng);
            let span = prop::range(1u64..40).generate(rng);
            Some((start, start + span))
        } else {
            None
        };
        FaultSpec {
            kind,
            window,
            from: prop::bools()
                .generate(rng)
                .then(|| prop::range(0usize..n).generate(rng)),
            to: prop::bools()
                .generate(rng)
                .then(|| prop::range(0usize..n).generate(rng)),
            msg: match prop::range(0usize..3).generate(rng) {
                0 => None,
                1 => Some(MsgFilter::Control),
                _ => Some(MsgFilter::Data),
            },
            probability: frac(rng),
            budget: prop::bools()
                .generate(rng)
                .then(|| prop::range(1u64..16).generate(rng)),
            amount: if kind == FaultKind::Drop {
                0
            } else {
                prop::range(1u64..8).generate(rng)
            },
            side: Vec::new(),
        }
    }
}

struct ScenarioGen;

impl Gen for ScenarioGen {
    type Value = Scenario;

    fn generate(&self, rng: &mut TestRng) -> Scenario {
        // Mobile phases need `1 + cells + callers <= n`; the generator
        // caps cells/callers at 2 each, so n >= 6 keeps everything legal.
        let n = prop::range(6usize..13).generate(rng);
        let entrant = Entrant::ALL[prop::range(0usize..Entrant::ALL.len()).generate(rng)];
        let phases = (0..prop::range(1usize..4).generate(rng))
            .map(|i| {
                let w = workload(rng, n);
                let len = if matches!(w, WorkloadSpec::Trace { .. }) {
                    0
                } else {
                    prop::range(1usize..24).generate(rng)
                };
                Phase {
                    name: format!("phase-{i}"),
                    len,
                    workload: w,
                }
            })
            .collect();
        let faults = (0..prop::range(0usize..3).generate(rng))
            .map(|_| fault(rng, n))
            .collect();
        Scenario {
            name: format!("prop-{}", prop::range(0u64..1_000_000).generate(rng)),
            description: "randomly generated by scenario_proptest \"quoted\"".into(),
            n,
            seed: prop::range(0u64..u64::MAX).generate(rng),
            entrant,
            events: prop::range(16usize..1024).generate(rng),
            environment: if prop::bools().generate(rng) {
                "sc"
            } else {
                "mc"
            }
            .into(),
            cc: frac(rng) * 4.0,
            cd: frac(rng) * 4.0,
            phases,
            faults,
            expect: Expect {
                max_ratio_vs_opt: prop::bools().generate(rng).then(|| 1.0 + frac(rng) * 8.0),
                min_valid_holders: prop::bools()
                    .generate(rng)
                    .then(|| prop::range(1usize..3).generate(rng)),
                max_scheme_churn: prop::bools()
                    .generate(rng)
                    .then(|| prop::range(0u64..64).generate(rng)),
                max_dropped_messages: prop::range(0u64..16).generate(rng),
                reads_completed: prop::bools()
                    .generate(rng)
                    .then(|| prop::range(0u64..32).generate(rng)),
                obs_parity: prop::bools().generate(rng),
            },
            golden: prop::bools()
                .generate(rng)
                .then(|| format!("0x{:016x}", prop::range(0u64..u64::MAX).generate(rng))),
        }
    }

    fn shrink(&self, v: &Scenario) -> Vec<Scenario> {
        let mut out = Vec::new();
        if !v.faults.is_empty() {
            let mut s = v.clone();
            s.faults.clear();
            out.push(s);
        }
        if v.phases.len() > 1 {
            let mut s = v.clone();
            s.phases.truncate(1);
            out.push(s);
        }
        out
    }
}

doma_testkit::property! {
    #[cases(96)]
    /// parse ∘ to_toml is the identity on valid scenarios, and the
    /// serialized form is a fixed point.
    fn parse_round_trips_generated_scenarios(scenario in ScenarioGen) {
        let text = scenario.to_toml();
        let reparsed = Scenario::parse(&text)
            .unwrap_or_else(|e| panic!("serializer emitted invalid TOML: {e}\n---\n{text}"));
        assert_eq!(scenario, reparsed, "typed round-trip drift\n---\n{text}");
        assert_eq!(text, reparsed.to_toml(), "serializer not idempotent");
    }
}

//! The golden-trace conformance wall (tentpole of the scenario-engine
//! PR): every builtin scenario replays deterministically, satisfies its
//! own expected-invariant block, and produces an obs snapshot whose
//! FNV-1a digest matches the `[golden]` value pinned in its file.
//!
//! A digest mismatch here means observable protocol behaviour changed.
//! If the change is intentional, re-pin with
//! `domactl scenario all --format json` and update the scenario files;
//! if not, it is a regression this wall exists to catch.

use doma_scenario::{builtin, run};

#[test]
fn every_builtin_scenario_passes_its_own_expectations() {
    let mut failures = Vec::new();
    for name in builtin::names() {
        let scenario = builtin::load(name).expect("builtin parses");
        let report = run(&scenario).expect("builtin runs");
        if !report.passed() {
            failures.push(format!("{name}: {:?}", report.violations));
        }
    }
    assert!(failures.is_empty(), "scenario wall broke:\n{failures:#?}");
}

#[test]
fn every_builtin_digest_matches_the_pinned_golden_value() {
    for name in builtin::names() {
        let scenario = builtin::load(name).expect("builtin parses");
        let golden = scenario.golden.clone().expect("builtin pins a digest");
        let report = run(&scenario).expect("builtin runs");
        assert_eq!(
            report.digest, golden,
            "digest drift in builtin scenario {name}"
        );
    }
}

#[test]
fn replays_are_byte_identical() {
    for name in builtin::names() {
        let scenario = builtin::load(name).expect("builtin parses");
        let a = run(&scenario).expect("first run");
        let b = run(&scenario).expect("second run");
        assert_eq!(
            a.snapshot_json, b.snapshot_json,
            "obs snapshot not byte-stable for {name}"
        );
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.render_json(), b.render_json());
    }
}

#[test]
fn builtin_sources_round_trip_through_the_serializer() {
    for name in builtin::names() {
        let scenario = builtin::load(name).expect("builtin parses");
        let reparsed = doma_scenario::Scenario::parse(&scenario.to_toml())
            .unwrap_or_else(|e| panic!("{name} serializer output rejected: {e}"));
        assert_eq!(scenario, reparsed, "round-trip drift for {name}");
    }
}

//! Trace → scenario replay equivalence (satellite of the scenario-engine
//! PR): a schedule produced by a generator phase, exported through
//! `doma_workload::trace::write_trace`, and replayed as a `trace` phase
//! must drive the simulator to the *identical* run — same request
//! stream, same cost tallies, same obs snapshot bytes, same digest.
//!
//! This pins the contract that trace files are a faithful interchange
//! format between the workload generators and the scenario engine.

use doma_scenario::{runner, Entrant, Expect, Phase, Scenario, WorkloadSpec};
use doma_workload::trace::{read_trace, write_trace};

fn base_scenario(workload: WorkloadSpec, len: usize) -> Scenario {
    Scenario {
        name: "trace-equivalence".into(),
        description: "generator phase vs its exported trace".into(),
        n: 6,
        seed: 0xD0_0D,
        entrant: Entrant::Da,
        events: 512,
        environment: "sc".into(),
        cc: 1.0,
        cd: 2.0,
        phases: vec![Phase {
            name: "only".into(),
            len,
            workload,
        }],
        faults: Vec::new(),
        expect: Expect::default(),
        golden: None,
    }
}

#[test]
fn generator_phase_and_its_exported_trace_run_identically() {
    let generated = base_scenario(
        WorkloadSpec::Zipf {
            theta: 1.1,
            read_fraction: 0.7,
        },
        30,
    );
    let schedule = runner::build_schedule(&generated).unwrap();
    assert_eq!(schedule.len(), 30);

    // Export the generated schedule in the paper's trace notation, with
    // comments and line wrapping to exercise the reader's tolerance.
    let mut buf = Vec::new();
    write_trace(&mut buf, &schedule, Some("exported by trace_replay"), 7).unwrap();
    let text = String::from_utf8(buf).unwrap();

    let replayed = base_scenario(WorkloadSpec::Trace { text: text.clone() }, 0);
    assert_eq!(runner::build_schedule(&replayed).unwrap(), schedule);
    assert_eq!(read_trace(text.as_bytes()).unwrap(), schedule);

    let a = runner::run(&generated).unwrap();
    let b = runner::run(&replayed).unwrap();
    assert!(a.passed(), "{:?}", a.violations);
    assert!(b.passed(), "{:?}", b.violations);
    assert_eq!(a.requests, b.requests);
    assert_eq!(a.cost, b.cost);
    assert_eq!(a.reads_completed, b.reads_completed);
    assert_eq!(a.scheme_churn, b.scheme_churn);
    assert_eq!(a.valid_holders, b.valid_holders);
    assert_eq!(a.snapshot_json, b.snapshot_json, "obs snapshots diverged");
    assert_eq!(a.digest, b.digest);
}

#[test]
fn trace_scenarios_round_trip_through_the_file_format() {
    let scenario = base_scenario(
        WorkloadSpec::Trace {
            text: "r1 w2 r3 r3 w0 r5 r4".into(),
        },
        0,
    );
    assert_eq!(scenario.total_len(), 7);
    let reparsed = Scenario::parse(&scenario.to_toml()).unwrap();
    assert_eq!(scenario, reparsed);
    let report = runner::run(&reparsed).unwrap();
    assert_eq!(report.requests, 7);
    assert!(report.passed(), "{:?}", report.violations);
}

//! Property tests of the storage substrate: recovery exactness, cache
//! coherence, and I/O accounting, under random operation sequences.
//! Runs on the in-tree `doma-testkit` harness.

use doma_core::ObjectId;
use doma_storage::{CachedStore, LocalStore, Version};
use doma_testkit::property::{self as prop, Gen};
use doma_testkit::TestRng;

#[derive(Debug, Clone)]
enum Op {
    Output { obj: u8, payload: u8 },
    Input { obj: u8 },
    Invalidate { obj: u8 },
}

/// Operations over 4 objects. Shrinks toward `Input { obj: 0 }` (the
/// cheapest, state-free operation) and shrinks object ids toward 0.
struct OpGen;

impl Gen for OpGen {
    type Value = Op;

    fn generate(&self, rng: &mut TestRng) -> Op {
        let obj = prop::range(0u8..4).generate(rng);
        match prop::range(0u8..3).generate(rng) {
            0 => Op::Output {
                obj,
                payload: prop::range(0u16..256).generate(rng) as u8,
            },
            1 => Op::Input { obj },
            _ => Op::Invalidate { obj },
        }
    }

    fn shrink(&self, v: &Op) -> Vec<Op> {
        let mut out = Vec::new();
        let obj = match v {
            Op::Output { obj, .. } | Op::Input { obj } | Op::Invalidate { obj } => *obj,
        };
        match v {
            Op::Output { payload, .. } => {
                out.push(Op::Input { obj });
                if *payload != 0 {
                    out.push(Op::Output { obj, payload: 0 });
                }
            }
            Op::Invalidate { .. } => out.push(Op::Input { obj }),
            Op::Input { .. } => {}
        }
        if obj != 0 {
            out.push(match v {
                Op::Output { payload, .. } => Op::Output {
                    obj: 0,
                    payload: *payload,
                },
                Op::Input { .. } => Op::Input { obj: 0 },
                Op::Invalidate { .. } => Op::Invalidate { obj: 0 },
            });
        }
        out
    }
}

fn arb_ops(max: usize) -> impl Gen<Value = Vec<Op>> {
    prop::vec_in(OpGen, 0..max)
}

fn apply(store: &mut LocalStore, ops: &[Op], version_counter: &mut u64) {
    for op in ops {
        match op {
            Op::Output { obj, payload } => {
                *version_counter += 1;
                store.output(
                    ObjectId(*obj as u64),
                    Version(*version_counter),
                    vec![*payload],
                );
            }
            Op::Input { obj } => {
                let _ = store.input(ObjectId(*obj as u64));
            }
            Op::Invalidate { obj } => store.invalidate(ObjectId(*obj as u64)),
        }
    }
}

doma_testkit::property! {
    /// Crash-recovery is exact: replaying the redo log reconstructs the
    /// pre-crash visible state for every object.
    fn recovery_is_exact(ops in arb_ops(60)) {
        let mut store = LocalStore::new();
        let mut vc = 0;
        apply(&mut store, &ops, &mut vc);
        let before: Vec<_> = (0..4)
            .map(|o| {
                let obj = ObjectId(o);
                (
                    store.holds_valid(obj),
                    store.peek(obj).map(|s| (s.version, s.payload.clone(), s.valid)),
                )
            })
            .collect();
        store.recover();
        let after: Vec<_> = (0..4)
            .map(|o| {
                let obj = ObjectId(o);
                (
                    store.holds_valid(obj),
                    store.peek(obj).map(|s| (s.version, s.payload.clone(), s.valid)),
                )
            })
            .collect();
        assert_eq!(before, after);
    }

    /// I/O accounting: inputs only grow on successful reads, outputs only
    /// on writes; invalidations and misses are free.
    fn io_accounting_is_consistent(ops in arb_ops(60)) {
        let mut store = LocalStore::new();
        let mut vc = 0;
        let mut expected_outputs = 0u64;
        let mut expected_inputs = 0u64;
        for op in &ops {
            match op {
                Op::Output { obj, payload } => {
                    vc += 1;
                    store.output(ObjectId(*obj as u64), Version(vc), vec![*payload]);
                    expected_outputs += 1;
                }
                Op::Input { obj } => {
                    let hit = store.input(ObjectId(*obj as u64)).is_some();
                    if hit {
                        expected_inputs += 1;
                    }
                }
                Op::Invalidate { obj } => store.invalidate(ObjectId(*obj as u64)),
            }
        }
        assert_eq!(store.io_stats().outputs, expected_outputs);
        assert_eq!(store.io_stats().inputs, expected_inputs);
    }

    /// The cached store is *coherent* with an uncached one: the same
    /// operation sequence yields the same visible versions, and the cache
    /// never serves a stale or missing replica.
    fn cached_store_is_coherent(
        ops in arb_ops(60),
        capacity in prop::range(0usize..4),
    ) {
        let mut plain = LocalStore::new();
        let mut cached = CachedStore::new(capacity);
        let mut vc_a = 0;
        let mut vc_b = 0;
        for op in &ops {
            match op {
                Op::Output { obj, payload } => {
                    vc_a += 1;
                    vc_b += 1;
                    plain.output(ObjectId(*obj as u64), Version(vc_a), vec![*payload]);
                    cached.output(ObjectId(*obj as u64), Version(vc_b), vec![*payload]);
                }
                Op::Input { obj } => {
                    let a = plain.input(ObjectId(*obj as u64)).map(|(v, d)| (v, d.to_vec()));
                    let b = cached.input(ObjectId(*obj as u64));
                    assert_eq!(a, b, "cached read diverged");
                }
                Op::Invalidate { obj } => {
                    plain.invalidate(ObjectId(*obj as u64));
                    cached.invalidate(ObjectId(*obj as u64));
                }
            }
        }
        // Caching can only reduce input I/O, never increase it, and
        // outputs are identical (write-through).
        assert!(cached.store().io_stats().inputs <= plain.io_stats().inputs);
        assert_eq!(cached.store().io_stats().outputs, plain.io_stats().outputs);
        // Hits + misses == successful reads on the plain store.
        let stats = cached.cache_stats();
        assert_eq!(stats.hits + stats.misses, plain.io_stats().inputs);
    }

    /// Cache crash safety: after crash_and_recover the visible state
    /// matches a freshly recovered plain store.
    fn cached_crash_recovery(ops in arb_ops(40)) {
        let mut cached = CachedStore::new(2);
        let mut vc = 0;
        for op in &ops {
            match op {
                Op::Output { obj, payload } => {
                    vc += 1;
                    cached.output(ObjectId(*obj as u64), Version(vc), vec![*payload]);
                }
                Op::Input { obj } => {
                    let _ = cached.input(ObjectId(*obj as u64));
                }
                Op::Invalidate { obj } => cached.invalidate(ObjectId(*obj as u64)),
            }
        }
        let before: Vec<_> = (0..4).map(|o| cached.holds_valid(ObjectId(o))).collect();
        cached.crash_and_recover();
        let after: Vec<_> = (0..4).map(|o| cached.holds_valid(ObjectId(o))).collect();
        assert_eq!(before, after);
        assert!(cached.cached_objects().is_empty(), "cache is volatile");
    }
}

//! Property tests of the storage substrate: recovery exactness, cache
//! coherence, and I/O accounting, under random operation sequences.

use doma_core::ObjectId;
use doma_storage::{CachedStore, LocalStore, Version};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Output { obj: u8, payload: u8 },
    Input { obj: u8 },
    Invalidate { obj: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4, any::<u8>()).prop_map(|(obj, payload)| Op::Output { obj, payload }),
        (0u8..4).prop_map(|obj| Op::Input { obj }),
        (0u8..4).prop_map(|obj| Op::Invalidate { obj }),
    ]
}

fn apply(store: &mut LocalStore, ops: &[Op], version_counter: &mut u64) {
    for op in ops {
        match op {
            Op::Output { obj, payload } => {
                *version_counter += 1;
                store.output(
                    ObjectId(*obj as u64),
                    Version(*version_counter),
                    vec![*payload],
                );
            }
            Op::Input { obj } => {
                let _ = store.input(ObjectId(*obj as u64));
            }
            Op::Invalidate { obj } => store.invalidate(ObjectId(*obj as u64)),
        }
    }
}

proptest! {
    /// Crash-recovery is exact: replaying the redo log reconstructs the
    /// pre-crash visible state for every object.
    #[test]
    fn recovery_is_exact(ops in proptest::collection::vec(arb_op(), 0..60)) {
        let mut store = LocalStore::new();
        let mut vc = 0;
        apply(&mut store, &ops, &mut vc);
        let before: Vec<_> = (0..4)
            .map(|o| {
                let obj = ObjectId(o);
                (
                    store.holds_valid(obj),
                    store.peek(obj).map(|s| (s.version, s.payload.clone(), s.valid)),
                )
            })
            .collect();
        store.recover();
        let after: Vec<_> = (0..4)
            .map(|o| {
                let obj = ObjectId(o);
                (
                    store.holds_valid(obj),
                    store.peek(obj).map(|s| (s.version, s.payload.clone(), s.valid)),
                )
            })
            .collect();
        prop_assert_eq!(before, after);
    }

    /// I/O accounting: inputs only grow on successful reads, outputs only
    /// on writes; invalidations and misses are free.
    #[test]
    fn io_accounting_is_consistent(ops in proptest::collection::vec(arb_op(), 0..60)) {
        let mut store = LocalStore::new();
        let mut vc = 0;
        let mut expected_outputs = 0u64;
        let mut expected_inputs = 0u64;
        for op in &ops {
            match op {
                Op::Output { obj, payload } => {
                    vc += 1;
                    store.output(ObjectId(*obj as u64), Version(vc), vec![*payload]);
                    expected_outputs += 1;
                }
                Op::Input { obj } => {
                    let hit = store.input(ObjectId(*obj as u64)).is_some();
                    if hit {
                        expected_inputs += 1;
                    }
                }
                Op::Invalidate { obj } => store.invalidate(ObjectId(*obj as u64)),
            }
        }
        prop_assert_eq!(store.io_stats().outputs, expected_outputs);
        prop_assert_eq!(store.io_stats().inputs, expected_inputs);
    }

    /// The cached store is *coherent* with an uncached one: the same
    /// operation sequence yields the same visible versions, and the cache
    /// never serves a stale or missing replica.
    #[test]
    fn cached_store_is_coherent(
        ops in proptest::collection::vec(arb_op(), 0..60),
        capacity in 0usize..4,
    ) {
        let mut plain = LocalStore::new();
        let mut cached = CachedStore::new(capacity);
        let mut vc_a = 0;
        let mut vc_b = 0;
        for op in &ops {
            match op {
                Op::Output { obj, payload } => {
                    vc_a += 1;
                    vc_b += 1;
                    plain.output(ObjectId(*obj as u64), Version(vc_a), vec![*payload]);
                    cached.output(ObjectId(*obj as u64), Version(vc_b), vec![*payload]);
                }
                Op::Input { obj } => {
                    let a = plain.input(ObjectId(*obj as u64)).map(|(v, d)| (v, d.to_vec()));
                    let b = cached.input(ObjectId(*obj as u64));
                    prop_assert_eq!(a, b, "cached read diverged");
                }
                Op::Invalidate { obj } => {
                    plain.invalidate(ObjectId(*obj as u64));
                    cached.invalidate(ObjectId(*obj as u64));
                }
            }
        }
        // Caching can only reduce input I/O, never increase it, and
        // outputs are identical (write-through).
        prop_assert!(cached.store().io_stats().inputs <= plain.io_stats().inputs);
        prop_assert_eq!(cached.store().io_stats().outputs, plain.io_stats().outputs);
        // Hits + misses == successful reads on the plain store.
        let stats = cached.cache_stats();
        prop_assert_eq!(stats.hits + stats.misses, plain.io_stats().inputs);
    }

    /// Cache crash safety: after crash_and_recover the visible state
    /// matches a freshly recovered plain store.
    #[test]
    fn cached_crash_recovery(ops in proptest::collection::vec(arb_op(), 0..40)) {
        let mut cached = CachedStore::new(2);
        let mut vc = 0;
        for op in &ops {
            match op {
                Op::Output { obj, payload } => {
                    vc += 1;
                    cached.output(ObjectId(*obj as u64), Version(vc), vec![*payload]);
                }
                Op::Input { obj } => {
                    let _ = cached.input(ObjectId(*obj as u64));
                }
                Op::Invalidate { obj } => cached.invalidate(ObjectId(*obj as u64)),
            }
        }
        let before: Vec<_> = (0..4).map(|o| cached.holds_valid(ObjectId(o))).collect();
        cached.crash_and_recover();
        let after: Vec<_> = (0..4).map(|o| cached.holds_valid(ObjectId(o))).collect();
        prop_assert_eq!(before, after);
        prop_assert!(cached.cached_objects().is_empty(), "cache is volatile");
    }
}

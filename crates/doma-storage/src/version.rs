//! Object versions.

use std::fmt;

/// A monotonically increasing object version. Each write request in the
/// totally ordered schedule creates the next version; a replica is *stale*
/// when a newer version exists somewhere, and stale replicas are
/// invalidated rather than updated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Version(pub u64);

impl Version {
    /// The version before any write (reading it yields the initial value).
    pub const INITIAL: Version = Version(0);

    /// The next version.
    #[must_use]
    pub fn next(self) -> Version {
        Version(self.0 + 1)
    }

    /// `true` if `self` is newer than `other`.
    pub fn is_newer_than(self, other: Version) -> bool {
        self.0 > other.0
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_next() {
        let v = Version::INITIAL;
        assert_eq!(v.next(), Version(1));
        assert!(v.next().is_newer_than(v));
        assert!(!v.is_newer_than(v));
        assert_eq!(Version(3).to_string(), "v3");
    }
}

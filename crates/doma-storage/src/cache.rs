//! An optional main-memory tier over the local store.
//!
//! The paper's model deliberately charges an I/O for *every* read, even at
//! a replica holder: "even when an object is replicated at a processor, it
//! may reside in secondary storage, leading to an I/O cost incurred at the
//! time of read" (§5.2, third difference from CDVM). This module provides
//! the CDVM-style alternative — an LRU memory cache in front of the local
//! database — so the cache-sensitivity ablation (E16) can measure how much
//! that modelling choice matters.

use crate::{LocalStore, Version};
use doma_core::ObjectId;

/// Cache observability counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Reads served from memory (no I/O charged).
    pub hits: u64,
    /// Reads that went to the local database (I/O charged).
    pub misses: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]` (`NaN` before any read).
    pub fn hit_ratio(&self) -> f64 {
        self.hits as f64 / (self.hits + self.misses) as f64
    }
}

/// A [`LocalStore`] fronted by an LRU memory cache of `capacity` objects.
///
/// Reads probe the cache first (a hit costs no I/O); misses read through
/// and populate the cache. Writes go *through* to stable storage (the
/// durability story is unchanged) and refresh the cache. Invalidations
/// evict. A crash empties the cache (it is volatile) but recovers the
/// store from its redo log.
///
/// ```
/// use doma_storage::{CachedStore, Version};
/// use doma_core::ObjectId;
///
/// let mut s = CachedStore::new(2);
/// s.output(ObjectId(1), Version(1), b"x".to_vec());
/// s.input(ObjectId(1)); // memory hit: no input I/O
/// assert_eq!(s.store().io_stats().inputs, 0);
/// assert_eq!(s.cache_stats().hits, 1);
/// ```
#[derive(Debug, Clone)]
pub struct CachedStore {
    store: LocalStore,
    /// LRU order, most-recent last. Tiny capacities in practice, so a Vec
    /// beats pointer-chasing structures.
    lru: Vec<ObjectId>,
    capacity: usize,
    stats: CacheStats,
}

impl CachedStore {
    /// Creates an empty cached store. `capacity = 0` disables caching
    /// (every read is a miss — the paper's model).
    pub fn new(capacity: usize) -> Self {
        CachedStore {
            store: LocalStore::new(),
            lru: Vec::new(),
            capacity,
            stats: CacheStats::default(),
        }
    }

    /// Wraps an existing store (e.g. one preloaded with the initial
    /// allocation).
    pub fn wrap(store: LocalStore, capacity: usize) -> Self {
        CachedStore {
            store,
            lru: Vec::new(),
            capacity,
            stats: CacheStats::default(),
        }
    }

    /// The underlying local store.
    pub fn store(&self) -> &LocalStore {
        &self.store
    }

    /// Mutable access to the underlying store (for non-read paths that
    /// must bypass the cache, e.g. recovery bookkeeping).
    pub fn store_mut(&mut self) -> &mut LocalStore {
        &mut self.store
    }

    /// Cache hit/miss counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.stats
    }

    /// Objects currently cached, least-recently-used first.
    pub fn cached_objects(&self) -> &[ObjectId] {
        &self.lru
    }

    fn touch(&mut self, object: ObjectId) {
        if self.capacity == 0 {
            return;
        }
        self.lru.retain(|&o| o != object);
        self.lru.push(object);
        while self.lru.len() > self.capacity {
            self.lru.remove(0);
        }
    }

    fn cached(&self, object: ObjectId) -> bool {
        self.lru.contains(&object)
    }

    /// Reads the latest valid replica: from memory if cached (no I/O),
    /// otherwise from the local database (one input I/O, then cached).
    pub fn input(&mut self, object: ObjectId) -> Option<(Version, Vec<u8>)> {
        if self.cached(object) && self.store.holds_valid(object) {
            self.stats.hits += 1;
            self.touch(object);
            let o = self.store.peek(object).expect("cached implies present");
            return Some((o.version, o.payload.clone()));
        }
        match self.store.input(object) {
            Some((v, d)) => {
                self.stats.misses += 1;
                let data = d.to_vec();
                self.touch(object);
                Some((v, data))
            }
            None => None,
        }
    }

    /// Writes through: one output I/O, cache refreshed.
    pub fn output(&mut self, object: ObjectId, version: Version, payload: Vec<u8>) {
        self.store.output(object, version, payload);
        self.touch(object);
    }

    /// Invalidates the replica and evicts it from memory.
    pub fn invalidate(&mut self, object: ObjectId) {
        self.store.invalidate(object);
        self.lru.retain(|&o| o != object);
    }

    /// Whether a valid replica is held (on disk; cache residency is a
    /// performance detail, not a correctness one).
    pub fn holds_valid(&self, object: ObjectId) -> bool {
        self.store.holds_valid(object)
    }

    /// Crash: the volatile cache is lost; the store recovers from its log.
    pub fn crash_and_recover(&mut self) -> usize {
        self.lru.clear();
        self.store.recover()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: ObjectId = ObjectId(1);
    const B: ObjectId = ObjectId(2);
    const C: ObjectId = ObjectId(3);

    #[test]
    fn hits_skip_io_misses_pay() {
        let mut s = CachedStore::new(4);
        s.output(A, Version(1), b"a".to_vec());
        assert_eq!(s.input(A).unwrap().0, Version(1)); // hit (write cached it)
        assert_eq!(s.store().io_stats().inputs, 0);
        assert_eq!(s.cache_stats(), CacheStats { hits: 1, misses: 0 });

        let mut cold = CachedStore::wrap(LocalStore::with_initial(A, Version(1), b"a".to_vec()), 4);
        assert!(cold.input(A).is_some()); // miss: cache starts empty
        assert_eq!(cold.store().io_stats().inputs, 1);
        assert!(cold.input(A).is_some()); // now a hit
        assert_eq!(cold.store().io_stats().inputs, 1);
        assert!((cold.cache_stats().hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_zero_disables_caching() {
        let mut s = CachedStore::new(0);
        s.output(A, Version(1), b"a".to_vec());
        s.input(A);
        s.input(A);
        assert_eq!(s.cache_stats(), CacheStats { hits: 0, misses: 2 });
        assert_eq!(s.store().io_stats().inputs, 2);
        assert!(s.cached_objects().is_empty());
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut s = CachedStore::new(2);
        s.output(A, Version(1), b"a".to_vec());
        s.output(B, Version(1), b"b".to_vec());
        s.output(C, Version(1), b"c".to_vec()); // evicts A
        assert_eq!(s.cached_objects(), &[B, C]);
        s.input(B); // B becomes most recent
        assert_eq!(s.cached_objects(), &[C, B]);
        s.input(A); // miss, re-cached, evicts C
        assert_eq!(s.cached_objects(), &[B, A]);
        assert_eq!(s.cache_stats().misses, 1);
    }

    #[test]
    fn invalidation_evicts_and_hides() {
        let mut s = CachedStore::new(2);
        s.output(A, Version(1), b"a".to_vec());
        s.invalidate(A);
        assert!(!s.holds_valid(A));
        assert!(s.input(A).is_none());
        assert!(s.cached_objects().is_empty());
        // A stale replica cached before invalidation must not be served.
        s.output(A, Version(2), b"a2".to_vec());
        assert_eq!(s.input(A).unwrap().0, Version(2));
    }

    #[test]
    fn crash_clears_cache_but_not_store() {
        let mut s = CachedStore::new(2);
        s.output(A, Version(1), b"a".to_vec());
        let recovered = s.crash_and_recover();
        assert_eq!(recovered, 1);
        assert!(s.cached_objects().is_empty());
        assert!(s.input(A).is_some()); // miss: cache was volatile
        assert_eq!(s.cache_stats().misses, 1);
    }
}

//! Append-only redo log with replay-based recovery.

use crate::Version;
use doma_core::ObjectId;

/// One durable log record. The store appends a record *before* applying
/// the corresponding mutation (write-ahead), so replaying the log from the
/// last checkpoint reconstructs the exact store state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// A new version of an object was stored locally.
    Put {
        /// The object.
        object: ObjectId,
        /// The version stored.
        version: Version,
        /// The object payload.
        payload: Vec<u8>,
    },
    /// The local replica of an object was invalidated (marked stale).
    Invalidate {
        /// The object.
        object: ObjectId,
    },
    /// The local replica was dropped entirely.
    Remove {
        /// The object.
        object: ObjectId,
    },
}

/// A per-processor append-only redo log (simulated stable storage).
#[derive(Debug, Clone, Default)]
pub struct RedoLog {
    records: Vec<LogRecord>,
    /// Index of the first record after the last checkpoint.
    checkpoint: usize,
}

impl RedoLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        RedoLog::default()
    }

    /// Appends a record (write-ahead).
    pub fn append(&mut self, record: LogRecord) {
        self.records.push(record);
    }

    /// All records since the last checkpoint, in append order.
    pub fn tail(&self) -> &[LogRecord] {
        &self.records[self.checkpoint..]
    }

    /// Total records ever appended (including checkpointed ones).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log has no records at all.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Marks everything up to now as checkpointed; [`tail`](Self::tail)
    /// becomes empty. (The store must have been flushed first; in this
    /// simulated substrate every mutation is immediately durable, so a
    /// checkpoint is always safe.)
    pub fn checkpoint(&mut self) {
        self.checkpoint = self.records.len();
    }

    /// Physically discards checkpointed records (log truncation).
    pub fn truncate_checkpointed(&mut self) {
        self.records.drain(..self.checkpoint);
        self.checkpoint = 0;
    }

    /// Replays the full log into a fresh store state, returning
    /// `(object, version, payload, valid)` tuples. Used by
    /// [`crate::LocalStore::recover`].
    pub fn replay(&self) -> Vec<(ObjectId, Version, Vec<u8>, bool)> {
        let mut state: Vec<(ObjectId, Version, Vec<u8>, bool)> = Vec::new();
        for record in &self.records {
            match record {
                LogRecord::Put {
                    object,
                    version,
                    payload,
                } => {
                    if let Some(e) = state.iter_mut().find(|e| e.0 == *object) {
                        e.1 = *version;
                        e.2 = payload.clone();
                        e.3 = true;
                    } else {
                        state.push((*object, *version, payload.clone(), true));
                    }
                }
                LogRecord::Invalidate { object } => {
                    if let Some(e) = state.iter_mut().find(|e| e.0 == *object) {
                        e.3 = false;
                    }
                }
                LogRecord::Remove { object } => {
                    state.retain(|e| e.0 != *object);
                }
            }
        }
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(o: u64, v: u64, b: &[u8]) -> LogRecord {
        LogRecord::Put {
            object: ObjectId(o),
            version: Version(v),
            payload: b.to_vec(),
        }
    }

    #[test]
    fn append_and_tail() {
        let mut log = RedoLog::new();
        assert!(log.is_empty());
        log.append(put(1, 1, b"a"));
        log.append(LogRecord::Invalidate {
            object: ObjectId(1),
        });
        assert_eq!(log.len(), 2);
        assert_eq!(log.tail().len(), 2);
        log.checkpoint();
        assert!(log.tail().is_empty());
        log.append(put(1, 2, b"b"));
        assert_eq!(log.tail().len(), 1);
        log.truncate_checkpointed();
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn replay_reconstructs_latest_state() {
        let mut log = RedoLog::new();
        log.append(put(1, 1, b"a"));
        log.append(put(2, 1, b"x"));
        log.append(put(1, 2, b"b"));
        log.append(LogRecord::Invalidate {
            object: ObjectId(2),
        });
        let state = log.replay();
        let o1 = state.iter().find(|e| e.0 == ObjectId(1)).unwrap();
        assert_eq!(
            (o1.1, o1.2.as_slice(), o1.3),
            (Version(2), b"b".as_ref(), true)
        );
        let o2 = state.iter().find(|e| e.0 == ObjectId(2)).unwrap();
        assert!(!o2.3, "object 2 must be stale after invalidation");
    }

    #[test]
    fn replay_handles_remove() {
        let mut log = RedoLog::new();
        log.append(put(1, 1, b"a"));
        log.append(LogRecord::Remove {
            object: ObjectId(1),
        });
        assert!(log.replay().is_empty());
    }
}

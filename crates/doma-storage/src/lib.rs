//! # doma-storage
//!
//! The local-database substrate of the model: every processor stores
//! replicas of objects in a *local database on stable storage*, and the
//! `cio` term of the cost model prices exactly the inputs/outputs against
//! that database.
//!
//! * [`LocalStore`] — a versioned object store with explicit I/O
//!   accounting ([`IoStats`]): `output` (store a version), `input` (fetch
//!   the latest valid version), `invalidate` (metadata only — the paper
//!   charges no I/O for invalidation; it is a control-message effect).
//! * [`RedoLog`] — an append-only redo log the store writes through, with
//!   replay-based recovery; this is what lets a crashed processor rejoin
//!   with its pre-crash state in the failure experiments.
//! * [`Version`] — monotonically increasing object versions, one per write
//!   in the totally ordered schedule.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod cache;
mod log;
mod store;
mod version;

pub use crate::log::{LogRecord, RedoLog};
pub use cache::{CacheStats, CachedStore};
pub use store::{IoStats, LocalStore, StoredObject};
pub use version::Version;

//! The per-processor versioned object store.

use crate::{LogRecord, RedoLog, Version};
use doma_core::ObjectId;
use std::collections::HashMap;

/// I/O accounting: how many object inputs (reads from the local database)
/// and outputs (writes to it) this store performed. These are the units
/// priced at `cio` by the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoStats {
    /// Number of object inputs from the local database.
    pub inputs: u64,
    /// Number of object outputs to the local database.
    pub outputs: u64,
}

impl IoStats {
    /// Total I/O operations.
    pub fn total(&self) -> u64 {
        self.inputs + self.outputs
    }
}

/// One locally stored replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredObject {
    /// The version held locally.
    pub version: Version,
    /// The object payload.
    pub payload: Vec<u8>,
    /// `false` once the replica has been invalidated (a newer version
    /// exists elsewhere); stale replicas are never served.
    pub valid: bool,
}

/// A processor's local database: versioned replicas behind a write-ahead
/// redo log, with explicit I/O accounting.
///
/// ```
/// use doma_storage::{LocalStore, Version};
/// use doma_core::ObjectId;
///
/// let mut store = LocalStore::new();
/// store.output(ObjectId(7), Version(1), b"hello".to_vec());
/// let (v, data) = store.input(ObjectId(7)).unwrap();
/// assert_eq!((v, data), (Version(1), b"hello".as_ref()));
/// assert_eq!(store.io_stats().total(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LocalStore {
    objects: HashMap<ObjectId, StoredObject>,
    log: RedoLog,
    io: IoStats,
}

impl LocalStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        LocalStore::default()
    }

    /// Creates a store that already holds `version` of `object` (the
    /// initial allocation scheme) without charging I/O.
    pub fn with_initial(object: ObjectId, version: Version, payload: Vec<u8>) -> Self {
        let mut s = LocalStore::new();
        s.log.append(LogRecord::Put {
            object,
            version,
            payload: payload.clone(),
        });
        s.objects.insert(
            object,
            StoredObject {
                version,
                payload,
                valid: true,
            },
        );
        s
    }

    /// Stores (outputs) a version of an object — one output I/O. Replaces
    /// any older replica and revalidates it.
    pub fn output(&mut self, object: ObjectId, version: Version, payload: Vec<u8>) {
        self.log.append(LogRecord::Put {
            object,
            version,
            payload: payload.clone(),
        });
        self.objects.insert(
            object,
            StoredObject {
                version,
                payload,
                valid: true,
            },
        );
        self.io.outputs += 1;
    }

    /// Inputs (reads) the latest valid replica of an object — one input
    /// I/O if present. Returns `None` (and charges nothing) if the store
    /// has no valid replica: in the protocol that situation is a bug the
    /// integration tests assert against, since a legal allocation schedule
    /// only reads from data processors.
    pub fn input(&mut self, object: ObjectId) -> Option<(Version, &[u8])> {
        match self.objects.get(&object) {
            Some(o) if o.valid => {
                self.io.inputs += 1;
                Some((o.version, o.payload.as_slice()))
            }
            _ => None,
        }
    }

    /// Peeks at the replica without charging I/O (metadata inspection).
    pub fn peek(&self, object: ObjectId) -> Option<&StoredObject> {
        self.objects.get(&object)
    }

    /// Marks the local replica stale. No I/O is charged: invalidation is a
    /// metadata operation triggered by a control message (§1.2 prices only
    /// the message).
    pub fn invalidate(&mut self, object: ObjectId) {
        if let Some(o) = self.objects.get_mut(&object) {
            if o.valid {
                self.log.append(LogRecord::Invalidate { object });
                o.valid = false;
            }
        }
    }

    /// Whether the store holds a *valid* (latest-known) replica.
    pub fn holds_valid(&self, object: ObjectId) -> bool {
        self.objects.get(&object).is_some_and(|o| o.valid)
    }

    /// The I/O counters.
    pub fn io_stats(&self) -> IoStats {
        self.io
    }

    /// Resets the I/O counters (e.g. between experiment phases).
    pub fn reset_io_stats(&mut self) {
        self.io = IoStats::default();
    }

    /// Read-only access to the redo log.
    pub fn log(&self) -> &RedoLog {
        &self.log
    }

    /// Simulates a crash + restart: drops the in-memory table and rebuilds
    /// it by replaying the redo log. I/O counters survive (they are
    /// experiment bookkeeping, not node state). Returns the number of
    /// objects recovered.
    pub fn recover(&mut self) -> usize {
        let state = self.log.replay();
        self.objects = state
            .into_iter()
            .map(|(object, version, payload, valid)| {
                (
                    object,
                    StoredObject {
                        version,
                        payload,
                        valid,
                    },
                )
            })
            .collect();
        self.objects.len()
    }

    /// Number of replicas held (valid or stale).
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OBJ: ObjectId = ObjectId(1);

    #[test]
    fn output_then_input_roundtrip() {
        let mut s = LocalStore::new();
        assert!(s.input(OBJ).is_none());
        assert_eq!(s.io_stats().total(), 0, "missing reads are free");
        s.output(OBJ, Version(1), b"v1".to_vec());
        let (v, data) = s.input(OBJ).expect("replica present");
        assert_eq!(v, Version(1));
        assert_eq!(data, b"v1");
        assert_eq!(
            s.io_stats(),
            IoStats {
                inputs: 1,
                outputs: 1
            }
        );
    }

    #[test]
    fn invalidation_hides_replica_without_io() {
        let mut s = LocalStore::new();
        s.output(OBJ, Version(1), b"v1".to_vec());
        s.invalidate(OBJ);
        assert!(!s.holds_valid(OBJ));
        assert!(s.input(OBJ).is_none());
        assert_eq!(
            s.io_stats(),
            IoStats {
                inputs: 0,
                outputs: 1
            }
        );
        // Idempotent: invalidating again appends nothing.
        let log_len = s.log().len();
        s.invalidate(OBJ);
        assert_eq!(s.log().len(), log_len);
        // A newer version revalidates.
        s.output(OBJ, Version(2), b"v2".to_vec());
        assert!(s.holds_valid(OBJ));
    }

    #[test]
    fn with_initial_charges_no_io() {
        let mut s = LocalStore::with_initial(OBJ, Version::INITIAL, b"init".to_vec());
        assert_eq!(s.io_stats().total(), 0);
        assert!(s.holds_valid(OBJ));
        assert_eq!(s.input(OBJ).unwrap().0, Version::INITIAL);
    }

    #[test]
    fn recovery_replays_log_exactly() {
        let mut s = LocalStore::new();
        s.output(OBJ, Version(1), b"a".to_vec());
        s.output(ObjectId(2), Version(1), b"x".to_vec());
        s.output(OBJ, Version(2), b"b".to_vec());
        s.invalidate(ObjectId(2));
        let before: Vec<_> = {
            let mut v: Vec<_> = s.objects.iter().map(|(k, o)| (*k, o.clone())).collect();
            v.sort_by_key(|(k, _)| k.0);
            v
        };
        let recovered = s.recover();
        assert_eq!(recovered, 2);
        let after: Vec<_> = {
            let mut v: Vec<_> = s.objects.iter().map(|(k, o)| (*k, o.clone())).collect();
            v.sort_by_key(|(k, _)| k.0);
            v
        };
        assert_eq!(before, after, "recovery must be exact");
    }

    #[test]
    fn peek_is_free() {
        let mut s = LocalStore::new();
        s.output(OBJ, Version(1), b"a".to_vec());
        let _ = s.peek(OBJ);
        assert_eq!(
            s.io_stats(),
            IoStats {
                inputs: 0,
                outputs: 1
            }
        );
    }

    #[test]
    fn reset_io_stats() {
        let mut s = LocalStore::new();
        s.output(OBJ, Version(1), b"a".to_vec());
        s.reset_io_stats();
        assert_eq!(s.io_stats().total(), 0);
    }
}

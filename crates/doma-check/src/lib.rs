//! `doma-check`: a bounded model checker for the SA/DA replication
//! protocols of Huang & Wolfson (ICDE 1994).
//!
//! The checker drives the deterministic simulation engine through
//! *every* message-delivery interleaving of a small scripted scenario
//! (depth-first over the engine's pending-event choice points, with
//! state-fingerprint deduplication and sleep-set partial-order
//! reduction), auditing each reached state with the fault harness's
//! [`doma_fault::InvariantChecker`]:
//!
//! * **t-availability** (§3.1) — in the normal regime the number of
//!   valid replicas, counting crashed stable stores, never drops below t;
//! * **one-copy reads** — a completed read returns at least the
//!   committed floor captured when the read was issued;
//! * **cost conservation** — the control/data/IO tallies are monotone;
//! * **version monotonicity** and **no protocol-reported errors**.
//!
//! On a violation the checker emits a minimal counterexample trace
//! (breadth-first re-search) replayable via the `DOMA_CHECK_TRACE`
//! environment variable — see [`replay`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod explore;
mod minimize;
pub mod replay;
pub mod scenario;

pub use explore::{check, CheckOptions, CheckReport, Counterexample, TraceStep};
pub use scenario::{builtin, Action, AdaptiveKind, Cluster, Scenario};

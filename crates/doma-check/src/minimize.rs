//! Breadth-first re-search for a globally shortest counterexample.
//!
//! The DFS in [`crate::explore`] returns the *first* violating schedule
//! it stumbles on, which is rarely the smallest. Because violations are
//! safety properties over reached states, a breadth-first walk of the
//! same (deduplicated) state graph finds a violating state at minimal
//! dispatch depth — the trace to hand a human. Sleep sets are a
//! depth-first device and are deliberately not used here; plain
//! fingerprint deduplication keeps the frontier finite.

use crate::explore::{CheckOptions, Counterexample, Progress, SearchState, TraceStep};
use crate::scenario::Scenario;
use doma_core::Result;
use std::collections::{HashSet, VecDeque};

/// Finds a shortest violating schedule of `scenario`, if one exists
/// within the option budgets. Returns `None` when the bounded search
/// space is clean (or the budget runs out first).
pub(crate) fn shortest_counterexample(
    scenario: &Scenario,
    opts: &CheckOptions,
) -> Result<Option<Counterexample>> {
    let initial = SearchState::initial(scenario)?;
    let mut frontier: VecDeque<(SearchState, Vec<TraceStep>)> = VecDeque::new();
    frontier.push_back((initial, Vec::new()));
    let mut visited: HashSet<u64> = HashSet::new();
    let mut expanded: u64 = 0;
    while let Some((mut state, trace)) = frontier.pop_front() {
        match state.advance(scenario) {
            Ok(Progress::Ready) => {}
            Ok(Progress::Done) => continue,
            Err(violation) => {
                return Ok(Some(Counterexample {
                    violation,
                    steps: trace,
                    minimized: true,
                    metrics: None,
                }));
            }
        }
        if state.depth >= opts.max_depth {
            continue;
        }
        if expanded >= opts.max_states {
            return Ok(None);
        }
        if !visited.insert(state.fingerprint()) {
            continue;
        }
        expanded += 1;
        for ev in state.sim.pending_events() {
            let mut child = state.fork();
            let mut child_trace = trace.clone();
            child_trace.push(TraceStep {
                seq: ev.seq(),
                label: ev.label().to_string(),
            });
            if let Err(violation) = child.step(scenario, ev.seq()) {
                return Ok(Some(Counterexample {
                    violation,
                    steps: child_trace,
                    minimized: true,
                    metrics: None,
                }));
            }
            frontier.push_back((child, child_trace));
        }
    }
    Ok(None)
}

//! Deterministic counterexample replay.
//!
//! A counterexample trace is the list of engine sequence numbers the
//! explorer dispatched, in order. Sequence numbers are deterministic —
//! the same scenario injects and sends events in the same order along
//! the same schedule — so a trace replays exactly, in the style of the
//! testkit's seed-replay convention (`DOMA_CHECK_TRACE=12-7-3 cargo test
//! -p doma-check <test>`).

use crate::explore::{Progress, SearchState};
use crate::scenario::Scenario;
use doma_core::Result;
use doma_fault::Violation;
use doma_testkit::replay::parse_u64;

/// Environment variable carrying a dash-separated trace to replay.
pub const TRACE_ENV: &str = "DOMA_CHECK_TRACE";

/// One replayed dispatch.
#[derive(Debug, Clone)]
pub struct ReplayStep {
    /// The engine sequence number dispatched.
    pub seq: u64,
    /// Label of the delivered event.
    pub label: String,
    /// Scenario phase the dispatch happened in.
    pub phase: usize,
}

/// The outcome of replaying a trace against a scenario.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Every dispatch performed, in order.
    pub steps: Vec<ReplayStep>,
    /// The violation the trace reproduces, if it still does.
    pub violation: Option<Violation>,
}

/// Formats a trace the way [`parse_trace`] reads it back.
pub fn format_trace(trace: &[u64]) -> String {
    trace
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>()
        .join("-")
}

/// Parses a dash-separated trace (`"12-7-3"`). Empty input is an empty
/// trace; any non-numeric component is `None`.
pub fn parse_trace(s: &str) -> Option<Vec<u64>> {
    let s = s.trim();
    if s.is_empty() {
        return Some(Vec::new());
    }
    s.split('-').map(parse_u64).collect()
}

/// Reads a trace from [`TRACE_ENV`], if set and well-formed.
pub fn trace_from_env() -> Option<Vec<u64>> {
    std::env::var(TRACE_ENV).ok().and_then(|s| parse_trace(&s))
}

/// Event-log bound for an instrumented replay; a counterexample trace is
/// short by construction, so this is generous.
const REPLAY_EVENT_CAPACITY: usize = 256;

/// Replays `trace` against a fresh instance of `scenario`, dispatching
/// exactly the listed events (phase barriers advance automatically when
/// the queue drains). Stops at the first violation, which is the one the
/// trace was minted to reproduce.
pub fn replay(scenario: &Scenario, trace: &[u64]) -> Result<ReplayReport> {
    let mut state = SearchState::initial(scenario)?;
    Ok(drive(scenario, &mut state, trace))
}

/// [`replay`] with an observability bundle attached to the cluster: the
/// returned [`doma_obs::Obs`] holds the metric tallies and event log of
/// exactly the replayed schedule. This is how counterexample reports get
/// their metrics — the search itself never carries instrumentation.
pub fn replay_observed(
    scenario: &Scenario,
    trace: &[u64],
) -> Result<(ReplayReport, doma_obs::Obs)> {
    let mut state = SearchState::initial(scenario)?;
    let obs = state.sim.attach_obs(REPLAY_EVENT_CAPACITY);
    let _trace_handle = state.sim.attach_tracer_on(obs.events().clone());
    let report = drive(scenario, &mut state, trace);
    state.sim.obs_flush();
    Ok((report, obs))
}

fn drive(scenario: &Scenario, state: &mut SearchState, trace: &[u64]) -> ReplayReport {
    let mut steps = Vec::new();
    for &seq in trace {
        match state.advance(scenario) {
            Ok(Progress::Ready) => {}
            Ok(Progress::Done) => break,
            Err(violation) => {
                return ReplayReport {
                    steps,
                    violation: Some(violation),
                }
            }
        }
        let label = state
            .sim
            .pending_events()
            .iter()
            .find(|e| e.seq() == seq)
            .map(|e| e.label().to_string())
            .unwrap_or_else(|| format!("<seq {seq} not queued>"));
        steps.push(ReplayStep {
            seq,
            label,
            phase: state.phase,
        });
        if let Err(violation) = state.step(scenario, seq) {
            return ReplayReport {
                steps,
                violation: Some(violation),
            };
        }
    }
    // The trace ran out without tripping anything; one more barrier
    // audit catches violations that surface only at quiescence.
    let violation = state.advance(scenario).err();
    ReplayReport { steps, violation }
}

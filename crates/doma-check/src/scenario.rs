//! Checker scenarios: a cluster under test plus a phased script of
//! concurrent actions.
//!
//! A scenario's phases execute in order with a *quiescence barrier*
//! between them: phase `k + 1` is injected only on paths where every
//! event of phase `k` (and its cascade) has been delivered. Actions
//! *within* a phase are concurrent — the explorer considers every
//! delivery order of the events they give rise to. This mirrors the
//! paper's §3.1 schedule model: reads between two writes are concurrent,
//! and a scenario that wants the normal-mode one-copy guarantee audited
//! puts each write in its own phase. Quorum-mode scenarios may mix reads
//! and writes freely in one phase — the per-read floor capture in
//! [`doma_fault::InvariantChecker`] keeps the oracle sound under overlap.

use doma_algorithms::{
    ClusteredAllocation, CostOblivious, MobileMirror, SlidingWindowConvergent, WriteInvalidateCache,
};
use doma_core::{DomaError, ProcSet, Result};
use doma_protocol::{BugSwitches, PlanOracle, ProtocolSim};
use doma_sim::{FaultAction, FaultPlan, LinkFilter, MsgKind, NodeId};

/// One client- or environment-level action, injected at the start of its
/// phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Node `p` issues a read of object 0.
    Read(usize),
    /// Node `p` issues a write of object 0 (versions are assigned in
    /// action order within the scenario).
    Write(usize),
    /// Node `p` crashes (volatile state lost, stable store kept).
    Crash(usize),
    /// Node `p` recovers, reloading its replica from the stable log.
    Recover(usize),
    /// Every node is told to enter (`true`) or leave (`false`) quorum
    /// mode. Each node's mode flip is its own explored event.
    ModeChange(bool),
    /// Node `p` alone is told to enter or leave quorum mode. Staggering
    /// entries across barrier phases keeps the mode-transition push
    /// cascades from all interleaving at once, which shrinks the search
    /// space without hiding the orders that matter later.
    ModeChangeAt(usize, bool),
}

impl std::fmt::Display for Action {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Action::Read(p) => write!(f, "r{p}"),
            Action::Write(p) => write!(f, "w{p}"),
            Action::Crash(p) => write!(f, "crash{p}"),
            Action::Recover(p) => write!(f, "recover{p}"),
            Action::ModeChange(q) => write!(f, "mode({q})"),
            Action::ModeChangeAt(p, q) => write!(f, "mode{p}({q})"),
        }
    }
}

/// Which adaptive allocator a [`Cluster::Adaptive`] scenario runs as its
/// plan oracle. Oracle parameters are fixed constants (window 8 / period
/// 4, threshold 2) so scenario construction stays deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptiveKind {
    /// Sliding-window convergent baseline (promoted).
    Convergent,
    /// Write-invalidate cache baseline (promoted).
    WriteInvalidate,
    /// Cost-oblivious reallocation contender.
    CostOblivious,
    /// Multiple-mobile-resource mirror contender.
    MobileMirror,
    /// Clustering-based fragment allocation contender.
    Clustered,
}

/// Which replication scheme the scenario's cluster runs.
#[derive(Debug, Clone)]
pub enum Cluster {
    /// Static allocation: read-one/write-all over `q`.
    Sa {
        /// Cluster size.
        n: usize,
        /// The static replication scheme Q.
        q: Vec<usize>,
    },
    /// Dynamic allocation: core set `f`, initial floater `p`.
    Da {
        /// Cluster size.
        n: usize,
        /// The core set F.
        f: Vec<usize>,
        /// The initial floater p.
        p: usize,
    },
    /// An adaptive allocator driven as a plan oracle. Oracle state is a
    /// deterministic function of the injected request sequence (identical
    /// on every explored path), so the explorer's content-fingerprint
    /// deduplication stays sound.
    Adaptive {
        /// Cluster size.
        n: usize,
        /// The initial replication scheme.
        initial: Vec<usize>,
        /// Which allocator decides the plans.
        kind: AdaptiveKind,
    },
}

impl Cluster {
    /// Cluster size.
    pub fn n(&self) -> usize {
        match self {
            Cluster::Sa { n, .. } | Cluster::Da { n, .. } | Cluster::Adaptive { n, .. } => *n,
        }
    }
}

/// A bounded-model-checking scenario: cluster, phased action script,
/// optional deterministic fault plan and protocol bug toggles.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Name shown in reports and replay lines.
    pub name: String,
    /// The cluster under test.
    pub cluster: Cluster,
    /// Phases of concurrent actions, barrier-separated.
    pub phases: Vec<Vec<Action>>,
    /// Deterministic message faults (duplicates, drops) applied for the
    /// whole run. Restricted by [`Scenario::build_sim`] to rules whose
    /// behaviour cannot depend on virtual time or randomness, so that the
    /// explorer's state deduplication stays sound.
    pub faults: Option<FaultPlan>,
    /// Historical protocol bugs to re-introduce (regression checking).
    pub bugs: BugSwitches,
}

impl Scenario {
    /// A scenario with no phases, faults or bugs.
    pub fn new(name: impl Into<String>, cluster: Cluster) -> Self {
        Scenario {
            name: name.into(),
            cluster,
            phases: Vec::new(),
            faults: None,
            bugs: BugSwitches::default(),
        }
    }

    /// Appends a phase of concurrent actions.
    pub fn phase(mut self, actions: &[Action]) -> Self {
        self.phases.push(actions.to_vec());
        self
    }

    /// Installs a deterministic fault plan (validated at build time).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Re-introduces historical protocol bugs for regression checking.
    pub fn with_bugs(mut self, bugs: BugSwitches) -> Self {
        self.bugs = bugs;
        self
    }

    /// Cluster size.
    pub fn n(&self) -> usize {
        self.cluster.n()
    }

    /// Total number of client requests across all phases.
    pub fn request_count(&self) -> usize {
        self.phases
            .iter()
            .flatten()
            .filter(|a| matches!(a, Action::Read(_) | Action::Write(_)))
            .count()
    }

    /// Validates the scenario and builds the cluster it runs against,
    /// with bug toggles applied and the fault plan installed.
    ///
    /// Fault plans are restricted to shapes whose judgements are a pure
    /// function of the message (probability 1, no budget, unbounded
    /// window, no partitions, no scheduled crashes): the explorer
    /// deduplicates states by content fingerprint, which is only sound
    /// when fault behaviour cannot depend on virtual time, arrival order
    /// or PRNG draws.
    pub fn build_sim(&self) -> Result<ProtocolSim> {
        let n = self.n();
        for action in self.phases.iter().flatten() {
            let p = match action {
                Action::Read(p)
                | Action::Write(p)
                | Action::Crash(p)
                | Action::Recover(p)
                | Action::ModeChangeAt(p, _) => *p,
                Action::ModeChange(_) => 0,
            };
            if p >= n {
                return Err(DomaError::InvalidConfig(format!(
                    "scenario {}: action {action} outside cluster of {n}",
                    self.name
                )));
            }
        }
        if let Some(plan) = &self.faults {
            if !plan.crashes().is_empty() || !plan.partitions().is_empty() {
                return Err(DomaError::InvalidConfig(format!(
                    "scenario {}: fault plans for the checker may not schedule \
                     crashes or partitions (use Action::Crash / phases instead)",
                    self.name
                )));
            }
            for rule in plan.rules() {
                if rule.probability < 1.0 || rule.budget.is_some() || rule.window != (0, u64::MAX) {
                    return Err(DomaError::InvalidConfig(format!(
                        "scenario {}: checker fault rules must be deterministic \
                         (probability 1, no budget, unbounded window)",
                        self.name
                    )));
                }
            }
        }
        let mut sim = match &self.cluster {
            Cluster::Sa { n, q } => ProtocolSim::new_sa(*n, q.iter().copied().collect())?,
            Cluster::Da { n, f, p } => {
                ProtocolSim::new_da(*n, f.iter().copied().collect(), (*p).into())?
            }
            Cluster::Adaptive { n, initial, kind } => {
                // Adaptive scenarios stay out of quorum-*exit* territory:
                // the checker injects ModeChange as raw messages, bypassing
                // the failover driver's oracle reset, so a scenario that
                // leaves quorum mode would run with a desynchronized
                // oracle. Entering quorum mode is fine (plans are ignored
                // there).
                for action in self.phases.iter().flatten() {
                    if matches!(
                        action,
                        Action::ModeChange(false) | Action::ModeChangeAt(_, false)
                    ) {
                        return Err(DomaError::InvalidConfig(format!(
                            "scenario {}: adaptive clusters may not leave quorum \
                             mode (oracle state is only resynchronized by the \
                             failover driver)",
                            self.name
                        )));
                    }
                }
                let init: ProcSet = initial.iter().copied().collect();
                let oracle: Box<dyn PlanOracle> = match kind {
                    AdaptiveKind::Convergent => {
                        Box::new(SlidingWindowConvergent::new(*n, 2, init, 8, 4)?)
                    }
                    AdaptiveKind::WriteInvalidate => Box::new(WriteInvalidateCache::new(init)?),
                    AdaptiveKind::CostOblivious => Box::new(CostOblivious::new(*n, 2, init, 2)?),
                    AdaptiveKind::MobileMirror => Box::new(MobileMirror::new(*n, 2, init)?),
                    AdaptiveKind::Clustered => Box::new(ClusteredAllocation::new(*n, 2, init)?),
                };
                ProtocolSim::new_adaptive(*n, oracle)?
            }
        };
        sim.set_bug_switches(self.bugs);
        if let Some(plan) = &self.faults {
            sim.engine_mut().install_faults(plan.clone());
        }
        Ok(sim)
    }
}

/// A fault plan duplicating every data message on the directed link
/// `from → to` — the checker-safe shape of the at-least-once-link fault.
pub fn duplicate_data_link(from: usize, to: usize) -> FaultPlan {
    FaultPlan::new(0).rule(doma_sim::FaultRule::always(
        LinkFilter::link(NodeId(from), NodeId(to)).of_kind(MsgKind::Data),
        FaultAction::Duplicate(1),
    ))
}

/// The small-bound SA configuration from the verification wall: 3
/// processors, Q = {0, 1}, 6 requests with reads concurrent between
/// barrier-separated writes (§3.1 schedule model).
pub fn sa_small() -> Scenario {
    Scenario::new(
        "sa-small",
        Cluster::Sa {
            n: 3,
            q: vec![0, 1],
        },
    )
    .phase(&[Action::Read(2), Action::Read(2)])
    .phase(&[Action::Write(0)])
    .phase(&[Action::Read(1), Action::Read(2)])
    .phase(&[Action::Write(2)])
}

/// The small-bound DA configuration: 3 processors, F = {0}, floater
/// p = 1, 6 requests including saving reads and an outsider write that
/// moves the floater.
pub fn da_small() -> Scenario {
    Scenario::new(
        "da-small",
        Cluster::Da {
            n: 3,
            f: vec![0],
            p: 1,
        },
    )
    .phase(&[Action::Read(2), Action::Read(2)])
    .phase(&[Action::Write(0)])
    .phase(&[Action::Read(2), Action::Read(1)])
    .phase(&[Action::Write(2)])
}

/// Quorum-mode SA scenario with a read/write/read overlap on one node:
/// the delivery orders include a straggler reply from the first read's
/// round arriving during the second read's round. Clean on the fixed
/// protocol; flips to a stale read when
/// [`BugSwitches::ignore_round_tags`] is set.
pub fn sa_quorum_overlap() -> Scenario {
    Scenario::new(
        "sa-quorum-overlap",
        Cluster::Sa {
            n: 3,
            q: vec![0, 1],
        },
    )
    .phase(&[Action::ModeChange(true)])
    .phase(&[Action::Read(2), Action::Write(0), Action::Read(2)])
}

/// Normal-mode DA scenario where a duplicated saving-read reply races a
/// write's invalidation. Clean on the fixed protocol; flips to a stale
/// read when [`BugSwitches::no_invalidated_floor`] is set (the late
/// duplicate resurrects the invalidated replica, and the next phase
/// reads it).
pub fn da_resurrect() -> Scenario {
    Scenario::new(
        "da-resurrect",
        Cluster::Da {
            n: 3,
            f: vec![0],
            p: 1,
        },
    )
    .with_faults(duplicate_data_link(0, 2))
    .phase(&[Action::Read(2), Action::Write(0)])
    .phase(&[Action::Read(2)])
}

/// Quorum-mode scenario (5 processors) where a reader can assemble its
/// majority from duplicated replies of a single stale peer. Clean on the
/// fixed protocol (responder sets are deduplicated); flips to a stale
/// read when [`BugSwitches::count_duplicate_responders`] is set.
pub fn sa_quorum_duplicates() -> Scenario {
    // Mode entries staggered across barriers: concurrent entry of five
    // nodes (two of them pushing missing writes to four peers each)
    // explodes the space past the small-bound budget without adding
    // orders that matter to the duplicate-responder race in the final
    // phase.
    Scenario::new(
        "sa-quorum-duplicates",
        Cluster::Sa {
            n: 5,
            q: vec![0, 1],
        },
    )
    .with_faults(duplicate_data_link(4, 3))
    .phase(&[Action::ModeChangeAt(0, true)])
    .phase(&[Action::ModeChangeAt(1, true)])
    .phase(&[Action::ModeChangeAt(2, true)])
    .phase(&[Action::ModeChangeAt(3, true)])
    .phase(&[Action::ModeChangeAt(4, true)])
    .phase(&[Action::Crash(3), Action::Crash(4)])
    .phase(&[Action::Write(0)])
    .phase(&[Action::Recover(3), Action::Recover(4)])
    .phase(&[Action::Read(3)])
}

/// Small-bound scenario for the promoted sliding-window convergent
/// baseline: 3 processors, initial scheme {0, 1}, with an outsider read,
/// a write that may shrink the scheme, two concurrent reads, and an
/// outsider write — enough churn for the oracle to issue a non-trivial
/// expansion/contraction plan. Reads within one phase are concurrent on
/// *different* nodes: adaptive reads are untagged (round 0), so two
/// overlapping reads on the same node would alias their replies.
pub fn convergent_small() -> Scenario {
    Scenario::new(
        "convergent-small",
        Cluster::Adaptive {
            n: 3,
            initial: vec![0, 1],
            kind: AdaptiveKind::Convergent,
        },
    )
    .phase(&[Action::Read(2)])
    .phase(&[Action::Write(0)])
    .phase(&[Action::Read(2), Action::Read(1)])
    .phase(&[Action::Write(2)])
}

/// Small-bound scenario for the promoted write-invalidate baseline
/// (t = 1, single-copy): cache-populating reads from two outsiders, then
/// a write by a non-holder that must invalidate every cached copy before
/// the final read audits the one-copy guarantee.
pub fn write_invalidate_small() -> Scenario {
    Scenario::new(
        "write-invalidate-small",
        Cluster::Adaptive {
            n: 3,
            initial: vec![0],
            kind: AdaptiveKind::WriteInvalidate,
        },
    )
    .phase(&[Action::Read(2)])
    .phase(&[Action::Write(0)])
    .phase(&[Action::Read(1)])
    .phase(&[Action::Write(2)])
}

/// The cost-oblivious contender under quorum mode: after the cluster
/// enters quorum mode the oracle's plans are ignored and reads/writes may
/// overlap freely in one phase — the same round-tag straggler race as
/// [`sa_quorum_overlap`], now reached from an adaptive cluster.
pub fn cost_oblivious_quorum_overlap() -> Scenario {
    Scenario::new(
        "cost-oblivious-quorum-overlap",
        Cluster::Adaptive {
            n: 3,
            initial: vec![0, 1],
            kind: AdaptiveKind::CostOblivious,
        },
    )
    .phase(&[Action::ModeChange(true)])
    .phase(&[Action::Read(2), Action::Write(0), Action::Read(2)])
}

/// The mobile-mirror contender against the duplicated-data-link fault of
/// [`da_resurrect`]: every data message on 0 → 2 is duplicated, so the
/// saving-read reply and the write's replica shipment each arrive twice,
/// and the late duplicates race the write's invalidation of node 1. The
/// saving read runs in its own phase: mobile-mirror *moves* its scheme on
/// writes (unlike DA's static core), so a write concurrent with the
/// scheme-growing read would drop node 1 while node 2's replica is still
/// in flight — a transient (and checker-visible) dip below t that the
/// phase barrier rules out, mirroring the paper's §3.1 schedule model
/// where the scheme change between writes is well-founded.
pub fn mobile_mirror_resurrect() -> Scenario {
    Scenario::new(
        "mobile-mirror-resurrect",
        Cluster::Adaptive {
            n: 3,
            initial: vec![0, 1],
            kind: AdaptiveKind::MobileMirror,
        },
    )
    .with_faults(duplicate_data_link(0, 2))
    .phase(&[Action::Read(2)])
    .phase(&[Action::Write(0)])
    .phase(&[Action::Read(2)])
}

/// Small-bound scenario for the clustered-allocation contender: an
/// outsider read pulls node 2 toward the scheme, a write re-anchors the
/// cluster, and the final outsider write forces a full migration plan.
pub fn clustered_small() -> Scenario {
    Scenario::new(
        "clustered-small",
        Cluster::Adaptive {
            n: 3,
            initial: vec![0, 1],
            kind: AdaptiveKind::Clustered,
        },
    )
    .phase(&[Action::Read(2)])
    .phase(&[Action::Write(0)])
    .phase(&[Action::Read(2)])
    .phase(&[Action::Write(2)])
}

/// Every built-in scenario, clean by construction on the fixed protocol.
pub fn builtin() -> Vec<Scenario> {
    vec![
        sa_small(),
        da_small(),
        sa_quorum_overlap(),
        da_resurrect(),
        sa_quorum_duplicates(),
        convergent_small(),
        write_invalidate_small(),
        cost_oblivious_quorum_overlap(),
        mobile_mirror_resurrect(),
        clustered_small(),
    ]
}

//! CLI for the bounded model checker: runs built-in scenarios (or one by
//! name) through exhaustive interleaving exploration and reports states
//! explored, pruned and any counterexample found.
//!
//! ```text
//! doma-check [--scenario NAME] [--max-states N] [--max-depth N]
//!            [--no-sleep-sets] [--no-minimize] [--list]
//! ```
//!
//! Exit codes: 0 clean, 1 violation found, 2 usage or budget exhaustion.

use doma_check::{builtin, check, CheckOptions};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: doma-check [--scenario NAME] [--max-states N] [--max-depth N] \
         [--no-sleep-sets] [--no-minimize] [--list]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut opts = CheckOptions::default();
    let mut selected: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scenario" => match args.next() {
                Some(name) => selected = Some(name),
                None => return usage(),
            },
            "--max-states" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.max_states = v,
                None => return usage(),
            },
            "--max-depth" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.max_depth = v,
                None => return usage(),
            },
            "--no-sleep-sets" => opts.sleep_sets = false,
            "--no-minimize" => opts.minimize = false,
            "--list" => {
                for s in builtin() {
                    println!(
                        "{} ({} phases, {} requests)",
                        s.name,
                        s.phases.len(),
                        s.request_count()
                    );
                }
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }

    let scenarios: Vec<_> = match &selected {
        Some(name) => {
            let found: Vec<_> = builtin().into_iter().filter(|s| &s.name == name).collect();
            if found.is_empty() {
                eprintln!("unknown scenario {name:?}; try --list");
                return ExitCode::from(2);
            }
            found
        }
        None => builtin(),
    };

    let mut worst: u8 = 0;
    for scenario in &scenarios {
        match check(scenario, &opts) {
            Ok(report) => {
                println!("{report}");
                if let Some(cex) = &report.counterexample {
                    println!("  violation: {}", cex.violation);
                    for (i, step) in cex.steps.iter().enumerate() {
                        println!("  step {:>2}: {}", i + 1, step.label);
                    }
                    if let Some(metrics) = &cex.metrics {
                        println!("  metrics over the violating schedule:");
                        for line in metrics.lines() {
                            println!("    {line}");
                        }
                    }
                    println!(
                        "  {}",
                        cex.replay_line(&scenario.name, "replay_trace_from_env")
                    );
                    worst = worst.max(1);
                } else if !report.complete {
                    worst = worst.max(2);
                }
            }
            Err(e) => {
                eprintln!("{}: configuration error: {e}", scenario.name);
                return ExitCode::from(2);
            }
        }
    }
    ExitCode::from(worst)
}

//! The exhaustive interleaving explorer: a depth-first search over
//! message-delivery choice points with state-fingerprint deduplication
//! and sleep-set partial-order reduction, auditing every reached state
//! with [`doma_fault::InvariantChecker`].
//!
//! # Search space
//!
//! A state is a fork of the whole cluster ([`ProtocolSim::fork`]) plus
//! the auditor carried alongside it. The transitions out of a state are
//! the queued engine events ([`ProtocolSim::pending_events`]); taking one
//! means [`ProtocolSim::dispatch_by_seq`] on a fresh fork. When the queue
//! drains, the current phase's quiescence barrier is audited and the next
//! phase of the scenario is injected.
//!
//! # Reductions
//!
//! *Deduplication.* Two states whose semantic fingerprints agree —
//! node states, liveness, the multiset of in-flight messages by content,
//! and the auditor's own state — have isomorphic futures (delivery
//! timestamps and engine sequence numbers are excluded on purpose: they
//! affect only latency metrics, never protocol decisions). Revisits are
//! pruned.
//!
//! *Sleep sets.* Two queued events targeting different nodes commute:
//! each one's effect is a function of its target's state alone, and the
//! network medium is point-to-point (checker scenarios never use the
//! shared-bus medium, whose busy-until cursor would couple unrelated
//! deliveries). After exploring `e` then `e'` from a state, the
//! `e'`-first order is entered with `e` in the *sleep set* and the
//! redundant `e`-second branches are skipped. Combined with caching, a
//! cached state is only pruned when it was previously explored with a
//! sleep set no larger than the current one (Godefroid's subset rule) —
//! otherwise the state is re-expanded with the intersection.

use crate::scenario::{Action, Scenario};
use doma_core::{DomaError, Result};
use doma_fault::{InvariantChecker, Regime, Violation};
use doma_protocol::{DomMsg, ProtocolSim};
use doma_sim::{NodeId, PendingEvent};
use doma_storage::Version;
use std::collections::HashMap;

/// Search budgets and toggles.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Maximum number of interior states to expand before giving up
    /// (the node budget; the report is then marked incomplete).
    pub max_states: u64,
    /// Maximum dispatches along any single path (the depth budget).
    pub max_depth: usize,
    /// Apply sleep-set partial-order reduction (on by default; turning
    /// it off is useful to measure how much it prunes).
    pub sleep_sets: bool,
    /// On violation, re-search breadth-first for a globally shortest
    /// counterexample trace.
    pub minimize: bool,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            max_states: 200_000,
            max_depth: 400,
            sleep_sets: true,
            minimize: true,
        }
    }
}

/// One dispatched choice in a counterexample trace.
#[derive(Debug, Clone)]
pub struct TraceStep {
    /// The engine sequence number dispatched (stable under replay).
    pub seq: u64,
    /// Human-readable label of the delivered event.
    pub label: String,
}

/// A violation together with the delivery schedule that reaches it.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The invariant violation the schedule triggers.
    pub violation: Violation,
    /// The dispatched events, in order.
    pub steps: Vec<TraceStep>,
    /// Whether `steps` is a globally shortest trace (breadth-first
    /// re-search) rather than the first one the DFS found.
    pub minimized: bool,
    /// Rendered metric table from replaying `steps` on an instrumented
    /// fresh instance of the scenario: the cost and lifecycle activity
    /// of exactly the counterexample schedule. The search itself never
    /// carries observability (forks strip it), so this is recomputed
    /// deterministically from the trace after the fact.
    pub metrics: Option<String>,
}

impl Counterexample {
    /// The raw seq schedule, e.g. for [`crate::replay::replay`].
    pub fn trace(&self) -> Vec<u64> {
        self.steps.iter().map(|s| s.seq).collect()
    }

    /// A copy-pasteable reproduction line in the house replay style.
    pub fn replay_line(&self, scenario: &str, test: &str) -> String {
        format!(
            "replay: DOMA_CHECK_SCENARIO={scenario} DOMA_CHECK_TRACE={} cargo test -p doma-check {test} -- --nocapture",
            crate::replay::format_trace(&self.trace())
        )
    }
}

/// What an exhaustive (or budget-bounded) exploration found.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Scenario name.
    pub scenario: String,
    /// Interior states expanded.
    pub states_explored: u64,
    /// Individual event dispatches performed.
    pub transitions: u64,
    /// Revisited states pruned by fingerprint deduplication.
    pub states_deduped: u64,
    /// Queued events skipped because they were in a sleep set.
    pub sleep_pruned: u64,
    /// Deepest path reached, in dispatches.
    pub max_depth_seen: usize,
    /// True when the search finished without hitting a budget: every
    /// interleaving was covered (up to the soundness of the reductions).
    pub complete: bool,
    /// The violation found, if any.
    pub counterexample: Option<Counterexample>,
}

impl std::fmt::Display for CheckReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} states explored, {} transitions, {} deduped, {} sleep-pruned, depth {} — {}{}",
            self.scenario,
            self.states_explored,
            self.transitions,
            self.states_deduped,
            self.sleep_pruned,
            self.max_depth_seen,
            match (&self.counterexample, self.complete) {
                (Some(_), _) => "VIOLATION",
                (None, true) => "exhaustive, no violation",
                (None, false) => "budget exhausted, no violation found",
            },
            match &self.counterexample {
                Some(c) => format!(
                    " [{} steps{}]",
                    c.steps.len(),
                    if c.minimized { ", minimal" } else { "" }
                ),
                None => String::new(),
            }
        )
    }
}

/// Whether the explorer can keep searching past a state.
pub(crate) enum Progress {
    /// The queue holds events: branch on them.
    Ready,
    /// All phases drained — a leaf of the search.
    Done,
}

pub(crate) enum Stop {
    Violation(Box<Counterexample>),
    Budget,
}

/// A point in the search: the cluster fork, the auditor riding along,
/// and the scenario cursor.
pub(crate) struct SearchState {
    pub(crate) sim: ProtocolSim,
    pub(crate) checker: InvariantChecker,
    /// Next phase to inject once the queue drains.
    pub(crate) phase: usize,
    /// Versions written by the current phase (committed-floor rule at
    /// the next barrier).
    writes_this_phase: Vec<Version>,
    /// Injected-but-undispatched client reads, seq → issuing node; used
    /// to capture each read's start floor at dispatch.
    read_nodes: HashMap<u64, usize>,
    /// Dispatches taken along this path.
    pub(crate) depth: usize,
    n: usize,
    t: usize,
}

impl SearchState {
    pub(crate) fn initial(scenario: &Scenario) -> Result<Self> {
        let sim = scenario.build_sim()?;
        let n = scenario.n();
        let t = sim.config().t();
        let checker = InvariantChecker::new(&sim, n);
        Ok(SearchState {
            sim,
            checker,
            phase: 0,
            writes_this_phase: Vec::new(),
            read_nodes: HashMap::new(),
            depth: 0,
            n,
            t,
        })
    }

    pub(crate) fn fork(&self) -> Self {
        SearchState {
            sim: self.sim.fork(),
            checker: self.checker.clone(),
            phase: self.phase,
            writes_this_phase: self.writes_this_phase.clone(),
            read_nodes: self.read_nodes.clone(),
            depth: self.depth,
            n: self.n,
            t: self.t,
        }
    }

    /// Degraded as soon as any live node serves in quorum mode — the
    /// regime rule the torture harness uses.
    fn regime(&self) -> Regime {
        let engine = self.sim.engine_ref();
        let degraded = (0..self.n).any(|i| {
            let id = NodeId(i);
            engine.is_alive(id) && engine.actor(id).in_quorum_mode()
        });
        if degraded {
            Regime::Degraded
        } else {
            Regime::Normal
        }
    }

    /// Semantic fingerprint of this search point. Folds the auditor in:
    /// two identical cluster states under different audit states can
    /// still diverge on a future check.
    pub(crate) fn fingerprint(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        self.sim.fingerprint().hash(&mut h);
        self.checker.fingerprint().hash(&mut h);
        self.phase.hash(&mut h);
        self.writes_this_phase.hash(&mut h);
        h.finish()
    }

    /// Audits barriers and injects phases until the queue holds events
    /// (or the scenario is exhausted).
    pub(crate) fn advance(
        &mut self,
        scenario: &Scenario,
    ) -> std::result::Result<Progress, Violation> {
        loop {
            if self.sim.engine_ref().has_pending() {
                return Ok(Progress::Ready);
            }
            // Quiescence barrier for the phase that just drained. In the
            // normal regime a write commits here — and only here — when
            // it reached at least t valid holders (the committed-write
            // rule the torture harness uses); mid-phase the floor is
            // frozen, because §3.1 promises nothing for reads overlapping
            // a write. In the degraded regime quorum evidence raises the
            // floor inside check_sim itself.
            let regime = self.regime();
            let wrote = if regime == Regime::Normal {
                self.writes_this_phase
                    .iter()
                    .max()
                    .copied()
                    .filter(|v| self.sim.holders_of(*v).len() >= self.t)
            } else {
                None
            };
            let context = format!(
                "scenario {}, barrier before phase {}",
                scenario.name, self.phase
            );
            self.checker
                .check_sim(&self.sim, None, regime, wrote, &context)?;
            self.writes_this_phase.clear();
            if self.phase >= scenario.phases.len() {
                return Ok(Progress::Done);
            }
            let actions = scenario.phases[self.phase].clone();
            self.phase += 1;
            for action in actions {
                self.inject(action).map_err(|e| Violation::ProtocolError {
                    node: 0,
                    error: e,
                    context: format!("scenario {}: injection failed", scenario.name),
                })?;
            }
        }
    }

    fn inject(&mut self, action: Action) -> Result<()> {
        match action {
            Action::Read(p) => {
                let seq = self.sim.inject_request(doma_core::Request::read(p))?;
                self.read_nodes.insert(seq, p);
            }
            Action::Write(p) => {
                self.sim.inject_request(doma_core::Request::write(p))?;
                self.writes_this_phase.push(self.sim.latest_version());
            }
            Action::Crash(p) => {
                self.sim.engine_mut().schedule_crash(NodeId(p), 0);
            }
            Action::Recover(p) => {
                self.sim.engine_mut().schedule_recover(NodeId(p), 0);
            }
            Action::ModeChange(quorum) => {
                for i in 0..self.n {
                    self.sim
                        .engine_mut()
                        .inject(NodeId(i), 0, DomMsg::ModeChange { quorum });
                }
            }
            Action::ModeChangeAt(p, quorum) => {
                self.sim
                    .engine_mut()
                    .inject(NodeId(p), 0, DomMsg::ModeChange { quorum });
            }
        }
        Ok(())
    }

    /// Dispatches one queued event and audits the resulting state.
    pub(crate) fn step(
        &mut self,
        scenario: &Scenario,
        seq: u64,
    ) -> std::result::Result<(), Violation> {
        let read_node = self.read_nodes.remove(&seq);
        if !self.sim.dispatch_by_seq(seq) {
            // Either the seq is not queued (replaying a stale trace) or
            // the engine's event budget tripped; check_sim distinguishes.
            let context = format!("scenario {}: dispatch of seq {seq} refused", scenario.name);
            self.checker
                .check_sim(&self.sim, None, self.regime(), None, &context)?;
            return Err(Violation::ProtocolError {
                node: 0,
                error: DomaError::InvalidConfig(format!("no queued event with seq {seq}")),
                context,
            });
        }
        if let Some(node) = read_node {
            // The read just left its client: every version committed by
            // now must be visible to it, whatever the remaining delivery
            // order does.
            self.checker.note_read_started(node);
        }
        self.depth += 1;
        let context = format!(
            "scenario {}, phase {}, depth {}",
            scenario.name, self.phase, self.depth
        );
        self.checker
            .check_sim(&self.sim, None, self.regime(), None, &context)
    }
}

/// Two queued events commute iff they are handled by different nodes
/// (point-to-point medium; see the module docs).
fn independent(a_target: NodeId, b_target: NodeId) -> bool {
    a_target != b_target
}

/// `a ⊆ b` for sorted multisets.
fn multiset_subset(a: &[u64], b: &[u64]) -> bool {
    let mut ib = 0;
    for &x in a {
        loop {
            if ib >= b.len() {
                return false;
            }
            let y = b[ib];
            ib += 1;
            if y == x {
                break;
            }
            if y > x {
                return false;
            }
        }
    }
    true
}

struct Explorer<'a> {
    scenario: &'a Scenario,
    opts: &'a CheckOptions,
    /// fp → sleep-set signatures (sorted content hashes) the state was
    /// explored under. Prune only if a stored signature is a subset of
    /// the current one.
    visited: HashMap<u64, Vec<Vec<u64>>>,
    states_explored: u64,
    transitions: u64,
    states_deduped: u64,
    sleep_pruned: u64,
    max_depth_seen: usize,
    depth_truncated: bool,
}

impl Explorer<'_> {
    fn counterexample(&self, violation: Violation, trace: &[TraceStep]) -> Box<Counterexample> {
        Box::new(Counterexample {
            violation,
            steps: trace.to_vec(),
            minimized: false,
            metrics: None,
        })
    }

    fn dfs(
        &mut self,
        mut state: SearchState,
        sleep: Vec<u64>,
        trace: &mut Vec<TraceStep>,
    ) -> std::result::Result<(), Stop> {
        match state.advance(self.scenario) {
            Ok(Progress::Ready) => {}
            Ok(Progress::Done) => return Ok(()),
            Err(v) => return Err(Stop::Violation(self.counterexample(v, trace))),
        }
        if state.depth >= self.opts.max_depth {
            self.depth_truncated = true;
            return Ok(());
        }
        if self.states_explored >= self.opts.max_states {
            return Err(Stop::Budget);
        }
        self.states_explored += 1;
        self.max_depth_seen = self.max_depth_seen.max(state.depth);

        let pending = state.sim.pending_events();
        let by_seq: HashMap<u64, &PendingEvent> = pending.iter().map(|e| (e.seq(), e)).collect();
        let enabled: Vec<&PendingEvent> = pending
            .iter()
            .filter(|e| !sleep.contains(&e.seq()))
            .collect();
        self.sleep_pruned += (pending.len() - enabled.len()) as u64;
        if enabled.is_empty() {
            // Every move is asleep: each is covered by a sibling branch
            // that dispatched it earlier against the same local state.
            return Ok(());
        }

        let fp = state.fingerprint();
        let mut sig: Vec<u64> = sleep
            .iter()
            .filter_map(|s| by_seq.get(s).map(|e| e.content_hash()))
            .collect();
        sig.sort_unstable();
        if let Some(sigs) = self.visited.get(&fp) {
            if sigs.iter().any(|stored| multiset_subset(stored, &sig)) {
                self.states_deduped += 1;
                return Ok(());
            }
        }
        self.visited.entry(fp).or_default().push(sig);

        let mut explored: Vec<(u64, NodeId)> = Vec::new();
        for ev in &enabled {
            let mut child = state.fork();
            trace.push(TraceStep {
                seq: ev.seq(),
                label: ev.label().to_string(),
            });
            self.transitions += 1;
            if let Err(v) = child.step(self.scenario, ev.seq()) {
                return Err(Stop::Violation(self.counterexample(v, trace)));
            }
            let child_sleep: Vec<u64> = if self.opts.sleep_sets {
                sleep
                    .iter()
                    .copied()
                    .chain(explored.iter().map(|(s, _)| *s))
                    .filter(|s| {
                        by_seq
                            .get(s)
                            .is_some_and(|e| independent(e.target(), ev.target()))
                    })
                    .collect()
            } else {
                Vec::new()
            };
            self.dfs(child, child_sleep, trace)?;
            trace.pop();
            explored.push((ev.seq(), ev.target()));
        }
        Ok(())
    }
}

/// Exhaustively explores every delivery interleaving of `scenario`
/// within the given budgets, auditing each reached state.
pub fn check(scenario: &Scenario, opts: &CheckOptions) -> Result<CheckReport> {
    let initial = SearchState::initial(scenario)?;
    let mut explorer = Explorer {
        scenario,
        opts,
        visited: HashMap::new(),
        states_explored: 0,
        transitions: 0,
        states_deduped: 0,
        sleep_pruned: 0,
        max_depth_seen: 0,
        depth_truncated: false,
    };
    let mut trace = Vec::new();
    let outcome = explorer.dfs(initial, Vec::new(), &mut trace);
    let mut complete = !explorer.depth_truncated;
    let counterexample = match outcome {
        Ok(()) => None,
        Err(Stop::Budget) => {
            complete = false;
            None
        }
        Err(Stop::Violation(cex)) => {
            let mut cex = *cex;
            if opts.minimize {
                if let Some(short) = crate::minimize::shortest_counterexample(scenario, opts)? {
                    cex = short;
                }
            }
            // Replay the final trace on an instrumented fresh instance so
            // the report carries the metric activity of the violating
            // schedule alongside the steps.
            if let Ok((_, obs)) = crate::replay::replay_observed(scenario, &cex.trace()) {
                cex.metrics = Some(obs.metrics().snapshot().to_string());
            }
            Some(cex)
        }
    };
    Ok(CheckReport {
        scenario: scenario.name.clone(),
        states_explored: explorer.states_explored,
        transitions: explorer.transitions,
        states_deduped: explorer.states_deduped,
        sleep_pruned: explorer.sleep_pruned,
        max_depth_seen: explorer.max_depth_seen,
        complete,
        counterexample,
    })
}

//! The regression wall: every protocol hardening from the fault-injection
//! campaign, encoded as a scenario that the checker proves clean on the
//! fixed protocol and demonstrably catches when the fix is reverted via
//! its test-only toggle — with a minimal, replayable counterexample.

use doma_check::replay::replay;
use doma_check::scenario::{
    da_resurrect, da_small, sa_quorum_duplicates, sa_quorum_overlap, sa_small,
};
use doma_check::{builtin, check, CheckOptions};
use doma_core::{ProcessorId, Request};
use doma_fault::{InvariantChecker, Regime, Violation};
use doma_protocol::failover::FailoverDriver;
use doma_protocol::{BugSwitches, ProtocolSim};

fn opts() -> CheckOptions {
    CheckOptions::default()
}

#[test]
fn small_bound_sa_configuration_is_exhaustively_clean() {
    let report = check(&sa_small(), &opts()).unwrap();
    assert!(report.complete, "search must exhaust the space: {report}");
    assert!(report.counterexample.is_none(), "{report}");
    assert!(report.states_explored > 10, "{report}");
}

#[test]
fn small_bound_da_configuration_is_exhaustively_clean() {
    let report = check(&da_small(), &opts()).unwrap();
    assert!(report.complete, "search must exhaust the space: {report}");
    assert!(report.counterexample.is_none(), "{report}");
    assert!(report.states_explored > 10, "{report}");
}

#[test]
fn every_builtin_scenario_is_exhaustively_clean() {
    for scenario in builtin() {
        let report = check(&scenario, &opts()).unwrap();
        assert!(report.complete, "{report}");
        assert!(report.counterexample.is_none(), "{report}");
    }
}

/// Runs a bug-toggled scenario, asserts the checker catches it with the
/// expected violation shape, and proves the minimal trace replays to the
/// same violation.
fn assert_caught(
    scenario: doma_check::Scenario,
    bugs: BugSwitches,
    expect: impl Fn(&Violation) -> bool,
) {
    let clean = check(&scenario, &opts()).unwrap();
    assert!(
        clean.complete && clean.counterexample.is_none(),
        "scenario must be clean without the bug: {clean}"
    );
    let buggy = scenario.with_bugs(bugs);
    let report = check(&buggy, &opts()).unwrap();
    let cex = report
        .counterexample
        .as_ref()
        .unwrap_or_else(|| panic!("reverted fix must be caught: {report}"));
    assert!(
        expect(&cex.violation),
        "unexpected violation shape: {}",
        cex.violation
    );
    assert!(cex.minimized, "counterexample must be BFS-minimal");
    let metrics = cex
        .metrics
        .as_deref()
        .expect("counterexample must carry the replayed metric table");
    assert!(
        metrics.contains("protocol") && metrics.contains("cost."),
        "metric table must show protocol cost activity:\n{metrics}"
    );
    eprintln!("{report}");
    eprintln!(
        "  {}",
        cex.replay_line(&buggy.name, "replay_trace_from_env")
    );
    let replayed = replay(&buggy, &cex.trace()).unwrap();
    let violation = replayed
        .violation
        .unwrap_or_else(|| panic!("minimal trace must replay to the violation"));
    assert!(
        expect(&violation),
        "replayed violation diverged: {violation}"
    );
    // Minimality spot-check: the trace is never longer than the whole
    // schedule budget, and every step is a real queued event.
    assert!(replayed.steps.len() == cex.steps.len());
}

#[test]
fn reverting_the_round_tag_fix_is_caught() {
    // Quorum replies from an earlier round counted toward a later
    // operation let a straggler assemble a stale majority.
    assert_caught(
        sa_quorum_overlap(),
        BugSwitches {
            ignore_round_tags: true,
            ..BugSwitches::default()
        },
        |v| matches!(v, Violation::StaleRead { .. }),
    );
}

#[test]
fn reverting_the_responder_dedup_fix_is_caught() {
    // Duplicated replies from one stale peer counted as distinct
    // responders let a reader reach its majority without intersecting
    // the write quorum.
    assert_caught(
        sa_quorum_duplicates(),
        BugSwitches {
            count_duplicate_responders: true,
            ..BugSwitches::default()
        },
        |v| matches!(v, Violation::StaleRead { .. }),
    );
}

#[test]
fn reverting_the_invalidation_floor_fix_is_caught() {
    // A duplicated saving-read reply arriving after the write's
    // invalidation resurrects the invalidated replica; the next phase
    // reads it stale.
    assert_caught(
        da_resurrect(),
        BugSwitches {
            no_invalidated_floor: true,
            ..BugSwitches::default()
        },
        |v| matches!(v, Violation::StaleRead { .. }),
    );
}

#[test]
fn reverting_the_mode_reset_gate_is_caught() {
    // The destructive ModeChange{false} broadcast on recovery lives in
    // the failover driver, outside the message-interleaving space, so
    // this regression drives the driver directly under the same oracle:
    // an outsider write moves the replication scheme off the static
    // F ∪ {p}, and an ungated normal-mode reset then flushes the only
    // replicas keeping the object t-available.
    for buggy in [false, true] {
        let sim =
            ProtocolSim::new_da(4, [0usize].into_iter().collect(), ProcessorId::new(1)).unwrap();
        let mut driver = FailoverDriver::new(sim, 4);
        let mut checker = InvariantChecker::new(driver.sim(), 4);
        driver.set_destructive_mode_reset(buggy);

        driver.execute_request(Request::write(3usize)).unwrap();
        checker
            .check(&driver, Regime::Normal, None, "outsider write")
            .unwrap();
        driver.crash(ProcessorId::new(2));
        checker
            .check(&driver, Regime::Normal, None, "non-scheme crash")
            .unwrap();
        driver.recover(ProcessorId::new(2));
        let verdict = checker.check(&driver, Regime::Normal, None, "recovery");
        if buggy {
            let violation = verdict.expect_err("ungated mode reset must be caught");
            assert!(
                matches!(violation, Violation::AvailabilityBelowT { .. }),
                "unexpected violation shape: {violation}"
            );
        } else {
            verdict.expect("gated recovery must stay t-available");
        }
    }
}

#[test]
fn sleep_sets_prune_without_changing_the_verdict() {
    let mut bare = opts();
    bare.sleep_sets = false;
    bare.minimize = false;
    let mut por = opts();
    por.minimize = false;

    // Clean scenario: identical verdict, strictly less work with POR.
    let slow = check(&da_small(), &bare).unwrap();
    let fast = check(&da_small(), &por).unwrap();
    assert!(slow.complete && fast.complete);
    assert!(slow.counterexample.is_none() && fast.counterexample.is_none());
    assert!(
        fast.transitions < slow.transitions,
        "sleep sets must prune some transitions ({} vs {})",
        fast.transitions,
        slow.transitions
    );

    // Buggy scenario: the violation survives the reduction.
    let buggy = da_resurrect().with_bugs(BugSwitches {
        no_invalidated_floor: true,
        ..BugSwitches::default()
    });
    let slow = check(&buggy, &bare).unwrap();
    let fast = check(&buggy, &por).unwrap();
    assert!(slow.counterexample.is_some() && fast.counterexample.is_some());
}

#[test]
fn state_budget_is_reported_as_incomplete() {
    let mut tight = opts();
    tight.max_states = 5;
    tight.minimize = false;
    let report = check(&sa_small(), &tight).unwrap();
    assert!(!report.complete);
    assert!(report.counterexample.is_none());
    assert!(report.states_explored <= 5);
}

/// Replays a trace from the environment against a named built-in
/// scenario, printing every step — the `DOMA_CHECK_TRACE` convention
/// printed by [`doma_check::Counterexample::replay_line`]. A no-op when
/// the variable is unset. Optional `DOMA_CHECK_BUGS` re-applies toggles
/// (substrings: `round`, `dup`, `floor`).
#[test]
fn replay_trace_from_env() {
    let Some(trace) = doma_check::replay::trace_from_env() else {
        return;
    };
    let name = std::env::var("DOMA_CHECK_SCENARIO").expect("set DOMA_CHECK_SCENARIO");
    let mut scenario = builtin()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("unknown scenario {name:?}"));
    if let Ok(bugs) = std::env::var("DOMA_CHECK_BUGS") {
        scenario.bugs = BugSwitches {
            ignore_round_tags: bugs.contains("round"),
            count_duplicate_responders: bugs.contains("dup"),
            no_invalidated_floor: bugs.contains("floor"),
        };
    }
    let report = replay(&scenario, &trace).unwrap();
    for (i, step) in report.steps.iter().enumerate() {
        println!("step {:>2} (phase {}): {}", i + 1, step.phase, step.label);
    }
    match report.violation {
        Some(v) => println!("violation: {v}"),
        None => println!("trace replayed clean"),
    }
}

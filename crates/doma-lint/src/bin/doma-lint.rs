//! Thin CLI over the lint engine (see `domactl lint` for the full
//! front-end with `--format`/`--rule` filters):
//!
//! ```text
//! doma-lint [WORKSPACE_ROOT]
//! ```
//!
//! Loads the workspace, runs the whole rule catalog (allowlist
//! applied), prints the table rendering, and exits 0 when clean,
//! 1 on findings, 2 on bad invocation.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let ws = match doma_lint::load_workspace(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("doma-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match doma_lint::run(&ws) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("doma-lint: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", doma_lint::render_table(&report));
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

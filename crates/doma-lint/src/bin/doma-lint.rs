//! Walks the workspace's `crates/` tree and applies the lint wall:
//!
//! * `no-panic` over `doma-algorithms`, `doma-protocol` and `doma-sim`
//!   non-test sources,
//! * `exhaustive-dispatch` over `doma-protocol`,
//! * `no-adhoc-print` over the instrumented crates' non-test, non-bin
//!   sources (CLI binaries under `src/bin` are exempt),
//! * `lint-headers` over every crate's `lib.rs`,
//! * `thread-containment` over every crate's `src/`, `benches/` and
//!   `tests/` — `std::thread` only in the approved fan-out modules,
//! * `scenario-digest` over `doma-scenario/scenarios/*.toml` — every
//!   builtin scenario parses as TOML-subset and pins a golden digest.
//!
//! ```text
//! doma-lint [WORKSPACE_ROOT]
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 bad invocation.

use doma_lint::{
    check_dispatch_exhaustive, check_lint_headers, check_no_adhoc_prints, check_no_panics,
    check_scenario_file, check_thread_containment, mask_cfg_test, mask_source,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Crates whose non-test code must never panic. `doma-algorithms` joined
/// when its baselines were promoted to first-class tournament entrants:
/// every allocator on the roster now runs inside the protocol sim as a
/// plan oracle, so a panic there takes the whole cluster down.
const NO_PANIC_CRATES: &[&str] = &["doma-algorithms", "doma-protocol", "doma-sim"];
/// Crates whose message dispatch must name every variant.
const DISPATCH_CRATES: &[&str] = &["doma-protocol"];
/// Instrumented crates whose library code must not print ad hoc: output
/// flows through the `doma-obs` event log / metric registry (or the
/// sanctioned `console::debug_line` choke point).
const NO_PRINT_CRATES: &[&str] = &[
    "doma-obs",
    "doma-sim",
    "doma-protocol",
    "doma-fault",
    "doma-check",
];
/// The only modules allowed to touch `std::thread`: the audited fan-out
/// points. Everything else — every crate, benches and tests included —
/// must stay single-threaded or route through `doma_sim::shard`.
const THREAD_MODULES: &[&str] = &[
    "doma-analysis/src/sweep.rs",
    "doma-sim/src/shard.rs",
    "doma-fault/src/torture.rs",
];

fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .display()
        .to_string()
}

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let crates = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates) else {
        eprintln!("doma-lint: no crates/ under {}", root.display());
        return ExitCode::from(2);
    };
    let mut crate_dirs: Vec<_> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut findings = Vec::new();
    let mut files_checked = 0usize;
    for dir in &crate_dirs {
        let name = dir.file_name().and_then(|n| n.to_str()).unwrap_or("");
        let lib = dir.join("src").join("lib.rs");
        if let Ok(src) = std::fs::read_to_string(&lib) {
            files_checked += 1;
            findings.extend(check_lint_headers(&rel(&root, &lib), &src));
        }
        let no_panic = NO_PANIC_CRATES.contains(&name);
        let dispatch = DISPATCH_CRATES.contains(&name);
        let no_print = NO_PRINT_CRATES.contains(&name);
        let mut files = Vec::new();
        for sub in ["src", "benches", "tests"] {
            rs_files(&dir.join(sub), &mut files);
        }
        for file in &files {
            let Ok(src) = std::fs::read_to_string(file) else {
                continue;
            };
            files_checked += 1;
            let label = rel(&root, file);
            let in_src = file.starts_with(dir.join("src"));
            let masked_raw = mask_source(&src);
            if !THREAD_MODULES.iter().any(|m| label.ends_with(m)) {
                findings.extend(check_thread_containment(&label, &masked_raw));
            }
            if !in_src {
                continue;
            }
            let masked = mask_cfg_test(&masked_raw);
            if no_panic {
                findings.extend(check_no_panics(&label, &masked));
            }
            if dispatch {
                findings.extend(check_dispatch_exhaustive(&label, &masked));
            }
            let in_bin = file
                .components()
                .any(|c| c.as_os_str() == "bin" || c.as_os_str() == "tests");
            if no_print && !in_bin {
                findings.extend(check_no_adhoc_prints(&label, &masked));
            }
        }
        if name == "doma-scenario" {
            let mut scenario_files: Vec<_> = std::fs::read_dir(dir.join("scenarios"))
                .map(|entries| {
                    entries
                        .flatten()
                        .map(|e| e.path())
                        .filter(|p| p.extension().is_some_and(|e| e == "toml"))
                        .collect()
                })
                .unwrap_or_default();
            scenario_files.sort();
            if scenario_files.is_empty() {
                eprintln!("doma-lint: no builtin scenarios under {}", dir.display());
                return ExitCode::from(2);
            }
            for file in &scenario_files {
                let Ok(src) = std::fs::read_to_string(file) else {
                    continue;
                };
                files_checked += 1;
                findings.extend(check_scenario_file(&rel(&root, file), &src));
            }
        }
    }

    for finding in &findings {
        println!("{finding}");
    }
    println!(
        "doma-lint: {} crates, {files_checked} files checked, {} finding(s)",
        crate_dirs.len(),
        findings.len()
    );
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

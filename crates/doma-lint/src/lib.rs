//! `doma-lint`: the workspace's semantic lint wall.
//!
//! A zero-dependency static analysis engine built on a hand-written
//! Rust lexer ([`lex`]) and a nested token-tree parser ([`tree`]).
//! Every rule operates on token trees with exact `file:line:col` spans
//! — comments and string literals are invisible, `#[cfg(test)]`-gated
//! items are stripped at the tree level, and sibling sequences at each
//! nesting depth let rules tell patterns from expressions and method
//! calls from definitions, distinctions the old character-masking
//! scanner could not make.
//!
//! # Rule catalog
//!
//! Per-file rules:
//!
//! * **no-panic** — no `.unwrap()`, `.expect(…)` or `panic!` in
//!   non-test code of `doma-algorithms`, `doma-protocol` and
//!   `doma-sim`. The simulation engine and the protocol actors are
//!   driven by the fault injector and the model checker through
//!   adversarial schedules; every failure mode must surface as a
//!   `DomaError` value the invariant checker can audit, never as a
//!   process abort.
//! * **exhaustive-dispatch** — no `_ =>` arms at the top level of a
//!   `match msg` message dispatch in `doma-protocol`. Adding a message
//!   variant must break the build until every actor decides how to
//!   handle it; a wildcard arm silently swallows new protocol messages.
//! * **no-adhoc-print** — no `println!`/`eprintln!` (or their
//!   non-newline forms) in non-test, non-bin code of the instrumented
//!   crates. Observable output flows through `doma-obs` — the event log
//!   and metric registry are deterministic and capturable; a stray
//!   print is neither. The single sanctioned terminal escape is
//!   `doma_obs::console::debug_line`.
//! * **thread-containment** — `std::thread` only in the three audited
//!   fan-out modules (`doma-sim::shard`, the sweep runner, the torture
//!   harness); `available_parallelism` is allowed anywhere.
//! * **determinism** — in the deterministic crates (`doma-sim`,
//!   `doma-protocol`, `doma-obs`, `doma-scenario`) non-test code must
//!   be a pure function of the seed: no `HashMap`/`HashSet` (random
//!   iteration order), no `Instant`/`SystemTime` (wall clock), no
//!   `env::var` (environment branching), no `.partial_cmp(…)` (NaN-
//!   partial float ordering). This is the invariant behind every golden
//!   obs digest and bit-identical sharded merge.
//! * **lint-headers** — every crate's `lib.rs` carries
//!   `#![warn(missing_docs)]` and `#![warn(rust_2018_idioms)]`.
//! * **scenario-digest** — every builtin scenario parses as the
//!   TOML-subset and pins a `[golden]` digest.
//!
//! Cross-file rules (facts that only exist across the file set):
//!
//! * **lock-order** — the static lock-acquisition graph over
//!   `Mutex`/`RwLock` guards in `doma-sim`: re-entrant acquisition in
//!   one scope and any cycle in the acquire-while-holding graph are
//!   rejected — the static shape of a deadlock.
//! * **message-flow** — every `DomMsg` variant must be both constructed
//!   and dispatched somewhere in `doma-protocol`; dead or unsendable
//!   protocol messages are lint errors.
//! * **obs-catalog** — every metric registered with literal
//!   `(component, name)` arguments must appear in the DESIGN §8
//!   catalog, and literal label keys must be sorted; name drift breaks
//!   obs JSON diffing silently.
//! * **span-catalog** — every span opened with a literal name
//!   (`.span_enter(…)` call sites and `span!` macro invocations) must
//!   appear in the DESIGN §13 span catalog; the trace exporter and the
//!   critical-path report key on span names.
//! * **stale-allowlist** — every `lint-allow.list` entry must still
//!   match a real finding (see [`allow`]).
//!
//! The engine ([`engine`]) loads a workspace (or accepts a synthetic
//! in-memory one — the mutation self-tests use that), runs the catalog,
//! applies the allowlist, and renders a table or byte-stable JSON. Two
//! runs over the same tree are byte-identical; verify.sh gates on it.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod allow;
pub mod engine;
pub mod lex;
pub mod rules;
pub mod tree;

pub use engine::{load_workspace, render_json, render_table, run, LintReport, Workspace};
pub use rules::{
    check_determinism, check_dispatch_exhaustive, check_lint_headers, check_lock_order,
    check_message_flow, check_no_adhoc_prints, check_no_panics, check_obs_catalog,
    check_scenario_file, check_span_catalog, check_thread_containment, design_metric_catalog,
    design_span_catalog,
};

/// A single lint violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-indexed line number.
    pub line: usize,
    /// 1-indexed column (in characters) of the finding's anchor token.
    pub col: usize,
    /// Short rule identifier (`no-panic`, `determinism`, `lock-order`,
    /// …).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

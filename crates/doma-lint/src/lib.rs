//! `doma-lint`: the workspace's protocol lint wall.
//!
//! A zero-dependency, text-level (AST-lite) linter enforcing the
//! conventions that keep the protocol crates checkable:
//!
//! * **no-panic** — no `.unwrap()`, `.expect(…)` or `panic!` in
//!   non-test code of `doma-protocol` and `doma-sim`. The simulation
//!   engine and the protocol actors are driven by the fault injector and
//!   the model checker through adversarial schedules; every failure mode
//!   must surface as a [`DomaError`](https://docs.rs) value the
//!   invariant checker can audit, never as a process abort.
//! * **exhaustive-dispatch** — no `_ =>` arms at the top level of a
//!   `match msg` message dispatch in `doma-protocol`. Adding a message
//!   variant must break the build until every actor decides how to
//!   handle it; a wildcard arm silently swallows new protocol messages.
//! * **no-adhoc-print** — no `println!`/`eprintln!` (or their
//!   non-newline forms) in non-test, non-bin code of the instrumented
//!   crates. Observable output flows through `doma-obs` — the event log
//!   and metric registry are deterministic and capturable; a stray
//!   print is neither. The single sanctioned terminal escape is
//!   `doma_obs::console::debug_line`.
//! * **lint-headers** — every crate's `lib.rs` carries
//!   `#![warn(missing_docs)]` and `#![warn(rust_2018_idioms)]`.
//!
//! The scanner masks comments, string/char literals and
//! `#[cfg(test)]`-gated items before matching, so doc examples and unit
//! tests may use `unwrap` freely.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

/// A single lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-indexed line number.
    pub line: usize,
    /// Short rule identifier (`no-panic`, `exhaustive-dispatch`,
    /// `lint-headers`).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Replaces every comment, string literal and char literal with spaces,
/// preserving newlines (so line numbers survive) and all other code
/// verbatim. Handles nested block comments, escapes, raw strings
/// (`r"…"`, `r#"…"#`) and distinguishes char literals from lifetimes.
pub fn mask_source(src: &str) -> String {
    let b: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let blank = |out: &mut String, c: char| out.push(if c == '\n' { '\n' } else { ' ' });
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        let next = b.get(i + 1).copied();
        // Line comment.
        if c == '/' && next == Some('/') {
            while i < b.len() && b[i] != '\n' {
                out.push(' ');
                i += 1;
            }
            continue;
        }
        // Block comment (nesting, as in Rust).
        if c == '/' && next == Some('*') {
            let mut depth = 0usize;
            while i < b.len() {
                if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    depth += 1;
                    out.push_str("  ");
                    i += 2;
                } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    out.push_str("  ");
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    blank(&mut out, b[i]);
                    i += 1;
                }
            }
            continue;
        }
        // Raw string: r"…" / r#"…"# (not part of an identifier).
        if c == 'r' && matches!(next, Some('"') | Some('#')) && (i == 0 || !is_ident(b[i - 1])) {
            let mut j = i + 1;
            let mut hashes = 0usize;
            while b.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            if b.get(j) == Some(&'"') {
                for _ in i..=j {
                    out.push(' ');
                }
                i = j + 1;
                loop {
                    if i >= b.len() {
                        break;
                    }
                    if b[i] == '"'
                        && b[i + 1..]
                            .iter()
                            .take(hashes)
                            .filter(|&&h| h == '#')
                            .count()
                            == hashes
                    {
                        for _ in 0..=hashes {
                            out.push(' ');
                        }
                        i += 1 + hashes;
                        break;
                    }
                    blank(&mut out, b[i]);
                    i += 1;
                }
                continue;
            }
        }
        // Ordinary string literal (covers b"…" too: the `b` stays code).
        if c == '"' {
            out.push(' ');
            i += 1;
            while i < b.len() {
                if b[i] == '\\' {
                    out.push_str("  ");
                    i += 2;
                } else if b[i] == '"' {
                    out.push(' ');
                    i += 1;
                    break;
                } else {
                    blank(&mut out, b[i]);
                    i += 1;
                }
            }
            continue;
        }
        // Char literal vs lifetime: '\…' or 'x' is a literal, 'a as in
        // `&'a str` (no closing quote right after) is a lifetime.
        if c == '\'' {
            let is_char = next == Some('\\') || b.get(i + 2) == Some(&'\'');
            if is_char {
                out.push(' ');
                i += 1;
                if b.get(i) == Some(&'\\') {
                    out.push_str("  ");
                    i += 2; // backslash + first escape char
                }
                while i < b.len() && b[i] != '\'' {
                    out.push(' ');
                    i += 1;
                }
                out.push(' ');
                i += 1; // closing quote
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    out
}

/// Blanks every `#[cfg(test)]`-gated item (module, function or `use`) in
/// an already [`mask_source`]d text, again preserving newlines. Brace
/// matching is exact because strings and comments are gone.
pub fn mask_cfg_test(masked: &str) -> String {
    let chars: Vec<char> = masked.chars().collect();
    let mut out = chars.clone();
    let pat: Vec<char> = "#[cfg(test)]".chars().collect();
    let mut i = 0;
    while i + pat.len() <= chars.len() {
        if chars[i..i + pat.len()] != pat[..] {
            i += 1;
            continue;
        }
        // Blank through the gated item: up to the matching `}` of its
        // first block, or the `;` of a braceless item.
        let mut j = i + pat.len();
        let mut end = chars.len();
        while j < chars.len() {
            match chars[j] {
                ';' => {
                    end = j + 1;
                    break;
                }
                '{' => {
                    let mut depth = 1usize;
                    let mut k = j + 1;
                    while k < chars.len() && depth > 0 {
                        match chars[k] {
                            '{' => depth += 1,
                            '}' => depth -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                    end = k;
                    break;
                }
                _ => j += 1,
            }
        }
        for slot in out.iter_mut().take(end).skip(i) {
            if *slot != '\n' {
                *slot = ' ';
            }
        }
        i = end;
    }
    out.into_iter().collect()
}

/// The `no-panic` rule: flags `.unwrap()`, `.expect(` and `panic!` in a
/// masked, test-stripped source. `debug_assert!` is deliberately allowed
/// (compiled out of release protocol builds).
pub fn check_no_panics(file: &str, masked_no_test: &str) -> Vec<Finding> {
    const FORBIDDEN: &[&str] = &[".unwrap()", ".expect(", "panic!"];
    let mut out = Vec::new();
    for (idx, line) in masked_no_test.lines().enumerate() {
        for pat in FORBIDDEN {
            let mut from = 0;
            while let Some(off) = line[from..].find(pat) {
                let col = from + off;
                // Patterns starting with `.` are self-delimiting; for
                // `panic!` reject identifier tails like `foo_panic!`.
                let boundary = pat.starts_with('.')
                    || col == 0
                    || !is_ident(line[..col].chars().next_back().unwrap_or(' '));
                if boundary {
                    out.push(Finding {
                        file: file.to_string(),
                        line: idx + 1,
                        rule: "no-panic",
                        message: format!("`{pat}` in protocol code"),
                    });
                    break;
                }
                from = col + pat.len();
            }
        }
    }
    out
}

/// The `exhaustive-dispatch` rule: flags a wildcard `_` arm at the top
/// level of a `match msg { … }` block. Nested matches inside an arm's
/// body (brace depth ≥ 2) and `_` inside tuple/struct patterns
/// (paren/bracket depth > 0, or a `..` rest pattern) are not dispatch
/// wildcards and are left alone.
pub fn check_dispatch_exhaustive(file: &str, masked: &str) -> Vec<Finding> {
    let chars: Vec<char> = masked.chars().collect();
    let line_of = |pos: usize| 1 + chars[..pos].iter().filter(|&&c| c == '\n').count();
    let pat: Vec<char> = "match msg".chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i + pat.len() <= chars.len() {
        if chars[i..i + pat.len()] != pat[..]
            || (i > 0 && is_ident(chars[i - 1]))
            || chars.get(i + pat.len()).copied().map(is_ident) == Some(true)
        {
            i += 1;
            continue;
        }
        // Enter the match block.
        let mut j = i + pat.len();
        while j < chars.len() && chars[j] != '{' {
            j += 1;
        }
        let mut brace = 1usize;
        let mut paren = 0usize;
        j += 1;
        while j < chars.len() && brace > 0 {
            match chars[j] {
                '{' => brace += 1,
                '}' => brace -= 1,
                '(' | '[' => paren += 1,
                ')' | ']' => paren = paren.saturating_sub(1),
                '_' if brace == 1
                    && paren == 0
                    && !is_ident(chars[j.wrapping_sub(1)])
                    && chars.get(j + 1).copied().map(is_ident) != Some(true) =>
                {
                    // A standalone `_` token at arm level: a wildcard
                    // pattern (with or without a guard).
                    let mut k = j + 1;
                    while k < chars.len() && chars[k].is_whitespace() {
                        k += 1;
                    }
                    let arm = chars.get(k) == Some(&'=') && chars.get(k + 1) == Some(&'>');
                    let guarded = chars.get(k) == Some(&'i') && chars.get(k + 1) == Some(&'f');
                    if arm || guarded {
                        out.push(Finding {
                            file: file.to_string(),
                            line: line_of(j),
                            rule: "exhaustive-dispatch",
                            message: "wildcard `_` arm in message dispatch — name every \
                                      message variant"
                                .to_string(),
                        });
                    }
                }
                _ => {}
            }
            j += 1;
        }
        i = j;
    }
    out
}

/// The `no-adhoc-print` rule: flags `println!`, `eprintln!`, `print!`
/// and `eprint!` in a masked, test-stripped source. Library code of the
/// instrumented crates must report through `doma-obs` (metrics, the
/// event log, or `doma_obs::console::debug_line` for environment-gated
/// debug streams); ad-hoc prints bypass the event log and make output
/// nondeterministic to capture. CLI binaries (`src/bin`) are exempt —
/// printing is their job.
pub fn check_no_adhoc_prints(file: &str, masked_no_test: &str) -> Vec<Finding> {
    const FORBIDDEN: &[&str] = &["println!", "eprintln!", "print!", "eprint!"];
    let mut out = Vec::new();
    for (idx, line) in masked_no_test.lines().enumerate() {
        for pat in FORBIDDEN {
            let mut from = 0;
            while let Some(off) = line[from..].find(pat) {
                let col = from + off;
                // Boundary check: `print!` must not fire inside
                // `eprint!`, nor any pattern inside a longer identifier.
                let boundary =
                    col == 0 || !is_ident(line[..col].chars().next_back().unwrap_or(' '));
                if boundary {
                    out.push(Finding {
                        file: file.to_string(),
                        line: idx + 1,
                        rule: "no-adhoc-print",
                        message: format!(
                            "`{pat}` in instrumented library code — use doma-obs \
                             (events/metrics or console::debug_line)"
                        ),
                    });
                    break;
                }
                from = col + pat.len();
            }
        }
    }
    out
}

/// The `thread-containment` rule: flags `std::thread` in a masked source.
/// Determinism is the workspace's backbone — every simulator engine is
/// single-threaded and every parallel construct must route through the
/// audited fan-out points (the sweep runner, the shard worker, the
/// torture harness), which the caller exempts by path. The one allowed
/// free-standing use is `std::thread::available_parallelism`: core-count
/// introspection spawns nothing.
pub fn check_thread_containment(file: &str, masked: &str) -> Vec<Finding> {
    const PAT: &str = "std::thread";
    const ALLOWED_TAIL: &str = "::available_parallelism";
    let mut out = Vec::new();
    for (idx, line) in masked.lines().enumerate() {
        let mut from = 0;
        while let Some(off) = line[from..].find(PAT) {
            let col = from + off;
            from = col + PAT.len();
            let boundary = (col == 0 || !is_ident(line[..col].chars().next_back().unwrap_or(' ')))
                && !line[from..].chars().next().is_some_and(is_ident);
            if boundary && !line[from..].starts_with(ALLOWED_TAIL) {
                out.push(Finding {
                    file: file.to_string(),
                    line: idx + 1,
                    rule: "thread-containment",
                    message: "`std::thread` outside the approved fan-out modules — \
                              route parallelism through doma_sim::shard::run_shards \
                              (or the sweep/torture harnesses)"
                        .to_string(),
                });
                break;
            }
        }
    }
    out
}

/// The `scenario-digest` rule: every builtin scenario file must be
/// syntactically well-formed TOML-subset (each non-blank line a
/// `[section]` / `[[section]]` header or a `key = value` entry) and must
/// pin a golden obs digest — a `[golden]` section whose `digest` entry is
/// `"0x"` + 16 hex digits. A builtin without a pin is a hole in the
/// golden-trace conformance wall: `cargo test` would replay it without
/// anything to compare against. (This check is deliberately text-level —
/// `doma-lint` stays dependency-free; the real parser and digest replay
/// run in `doma-scenario`'s own tests and the verify gate.)
pub fn check_scenario_file(file: &str, src: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut in_golden = false;
    let mut digest_line: Option<(usize, String)> = None;
    for (idx, raw) in src.lines().enumerate() {
        // Strip a `#` comment, ignoring `#` inside double quotes.
        let mut in_str = false;
        let mut escaped = false;
        let mut body = raw;
        for (pos, c) in raw.char_indices() {
            match c {
                _ if escaped => escaped = false,
                '\\' if in_str => escaped = true,
                '"' => in_str = !in_str,
                '#' if !in_str => {
                    body = &raw[..pos];
                    break;
                }
                _ => {}
            }
        }
        let line = body.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(section) = line
            .strip_prefix("[[")
            .and_then(|r| r.strip_suffix("]]"))
            .or_else(|| line.strip_prefix('[').and_then(|r| r.strip_suffix(']')))
        {
            in_golden = section.trim() == "golden";
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            out.push(Finding {
                file: file.to_string(),
                line: idx + 1,
                rule: "scenario-digest",
                message: format!("not a section header or `key = value` entry: `{line}`"),
            });
            continue;
        };
        if in_golden && key.trim() == "digest" {
            digest_line = Some((idx + 1, value.trim().to_string()));
        }
    }
    match digest_line {
        None => out.push(Finding {
            file: file.to_string(),
            line: 1,
            rule: "scenario-digest",
            message: "no `[golden]` digest pinned — every builtin scenario must name its \
                      golden obs digest"
                .to_string(),
        }),
        Some((line, value)) => {
            let hex = value
                .strip_prefix("\"0x")
                .and_then(|r| r.strip_suffix('"'))
                .unwrap_or("");
            if hex.len() != 16 || !hex.chars().all(|c| c.is_ascii_hexdigit()) {
                out.push(Finding {
                    file: file.to_string(),
                    line,
                    rule: "scenario-digest",
                    message: format!("golden digest must be \"0x\" + 16 hex digits, got {value}"),
                });
            }
        }
    }
    out
}

/// The `lint-headers` rule: every crate root must opt into the
/// workspace's documentation and idiom lints.
pub fn check_lint_headers(file: &str, src: &str) -> Vec<Finding> {
    ["#![warn(missing_docs)]", "#![warn(rust_2018_idioms)]"]
        .iter()
        .filter(|pragma| !src.contains(*pragma))
        .map(|pragma| Finding {
            file: file.to_string(),
            line: 1,
            rule: "lint-headers",
            message: format!("crate root missing `{pragma}`"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_strips_comments_strings_and_chars() {
        let src = r##"
let a = "panic! in a string .unwrap()"; // .unwrap() in a comment
/* block .expect( comment /* nested */ still */
let b = r#"raw .unwrap() string"#;
let c = '\''; let d: &'static str = "x";
real.unwrap();
"##;
        let masked = mask_source(src);
        assert_eq!(masked.lines().count(), src.lines().count());
        assert_eq!(masked.matches(".unwrap()").count(), 1);
        assert!(!masked.contains("panic!"));
        assert!(!masked.contains(".expect("));
        assert!(masked.contains("&'static str"), "lifetimes survive");
    }

    #[test]
    fn cfg_test_items_are_blanked() {
        let src = "
fn live() { x.unwrap(); }
#[cfg(test)]
mod tests {
    fn t() { y.unwrap(); panic!(); }
}
#[cfg(test)]
use std::collections::HashMap;
fn also_live() {}
";
        let masked = mask_cfg_test(&mask_source(src));
        assert_eq!(masked.matches("unwrap").count(), 1);
        assert!(!masked.contains("panic!"));
        assert!(!masked.contains("HashMap"));
        assert!(masked.contains("also_live"));
    }

    #[test]
    fn no_panic_flags_each_forbidden_call() {
        let src = "
fn f() {
    a.unwrap();
    b.expect(\"boom\");
    panic!(\"no\");
    c.unwrap_or(0);
    debug_assert!(ok);
}
";
        let findings = check_no_panics("f.rs", &mask_cfg_test(&mask_source(src)));
        assert_eq!(findings.len(), 3, "{findings:?}");
        assert_eq!(findings[0].line, 3);
        assert!(findings.iter().all(|f| f.rule == "no-panic"));
    }

    #[test]
    fn dispatch_wildcard_is_flagged_only_at_arm_level() {
        let src = "
fn on_message(&mut self, msg: Msg) {
    match msg {
        Msg::A { x } => {
            match x {
                Some(_) => {}
                _ => {}
            }
        }
        Msg::B(other) => {
            let (_, keep) = other;
        }
        _ => {}
    }
}
";
        let findings = check_dispatch_exhaustive("f.rs", &mask_source(src));
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 13);
    }

    #[test]
    fn dispatch_wildcard_with_guard_is_flagged() {
        let src = "match msg { Msg::A => {} _ if late => {} }";
        let findings = check_dispatch_exhaustive("f.rs", &mask_source(src));
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn exhaustive_dispatch_passes_clean_match() {
        let src = "match msg { Msg::A => {} Msg::B { any: _ } => {} }";
        // `_` as a field binding sits inside the pattern's braces
        // (depth 2), not at arm level.
        assert!(check_dispatch_exhaustive("f.rs", &mask_source(src)).is_empty());
    }

    #[test]
    fn adhoc_prints_are_flagged_with_exact_boundaries() {
        let src = "
fn f() {
    println!(\"x\");
    eprintln!(\"y\");
    print!(\"z\");
    eprint!(\"w\");
    my_println!(\"not the macro\");
    writeln!(out, \"fine\").ok();
}
";
        let findings = check_no_adhoc_prints("f.rs", &mask_cfg_test(&mask_source(src)));
        assert_eq!(findings.len(), 4, "{findings:?}");
        assert!(findings.iter().all(|f| f.rule == "no-adhoc-print"));
        // `eprintln!` must yield one finding for itself, not a second
        // one for the embedded `println!` text.
        assert_eq!(findings[1].line, 4);
        assert!(findings[1].message.contains("`eprintln!`"));
    }

    #[test]
    fn adhoc_prints_in_tests_and_strings_are_fine() {
        let src = "
fn f() { let s = \"println! in a string\"; } // println! in a comment
#[cfg(test)]
mod tests {
    fn t() { println!(\"debug\"); }
}
";
        let findings = check_no_adhoc_prints("f.rs", &mask_cfg_test(&mask_source(src)));
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn thread_containment_flags_spawns_but_not_core_counts() {
        let src = "
fn f() {
    std::thread::scope(|s| s.spawn(|| {}));
    std::thread::spawn(|| {});
    let cores = std::thread::available_parallelism();
    my_std::thread_pool(); // not the module
}
// std::thread in a comment is fine
let s = \"std::thread in a string too\";
";
        let findings = check_thread_containment("f.rs", &mask_source(src));
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert_eq!(findings[0].line, 3);
        assert_eq!(findings[1].line, 4);
        assert!(findings.iter().all(|f| f.rule == "thread-containment"));
    }

    #[test]
    fn scenario_digest_accepts_a_pinned_builtin() {
        let src = "# a builtin\n[scenario]\nname = \"demo\" # trailing comment\n\
                   [[phase]]\nname = \"p\"\n\
                   [golden]\ndigest = \"0x0123456789abcdef\"\n";
        assert!(check_scenario_file("s.toml", src).is_empty());
    }

    #[test]
    fn scenario_digest_flags_missing_and_malformed_pins() {
        let missing = "[scenario]\nname = \"demo\"\n";
        let findings = check_scenario_file("s.toml", missing);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("no `[golden]` digest"));
        assert_eq!(findings[0].rule, "scenario-digest");

        let short = "[golden]\ndigest = \"0x1234\"\n";
        let findings = check_scenario_file("s.toml", short);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 2);
        assert!(findings[0].message.contains("16 hex digits"));

        // A digest outside [golden] does not count as a pin.
        let elsewhere = "[scenario]\ndigest = \"0x0123456789abcdef\"\n";
        assert_eq!(check_scenario_file("s.toml", elsewhere).len(), 1);

        let junk = "[golden]\nthis is not an entry\ndigest = \"0x0123456789abcdef\"\n";
        let findings = check_scenario_file("s.toml", junk);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 2);
        assert!(findings[0].message.contains("not a section header"));

        // `#` inside a string is content, not a comment delimiter.
        let hash = "[golden]\ndigest = \"0x0123456789abcdef\"\nnote = \"a # b\"\n";
        assert!(check_scenario_file("s.toml", hash).is_empty());
    }

    #[test]
    fn lint_headers_requires_both_pragmas() {
        let both = "#![warn(missing_docs)]\n#![warn(rust_2018_idioms)]\n";
        assert!(check_lint_headers("lib.rs", both).is_empty());
        let one = "#![warn(missing_docs)]\n";
        let findings = check_lint_headers("lib.rs", one);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("rust_2018_idioms"));
    }
}

//! The rule catalog, implemented over token trees.
//!
//! Per-file rules take a file label plus the parsed (and, where the rule
//! demands it, `#[cfg(test)]`-stripped) token trees. Cross-file rules
//! (`lock-order`, `message-flow`, `obs-catalog`) take the whole file set
//! of the crates they audit, because their facts — lock acquisition
//! edges, enum variants vs. use sites, metric registrations vs. the
//! DESIGN catalog — only exist across files.

use crate::lex::{Delim, TokKind, Token};
use crate::tree::{walk_levels, Tree};
use crate::Finding;
use std::collections::{BTreeMap, BTreeSet};

fn finding(file: &str, tok: &Token<'_>, rule: &'static str, message: String) -> Finding {
    Finding {
        file: file.to_string(),
        line: tok.line as usize,
        col: tok.col as usize,
        rule,
        message,
    }
}

/// Whether `level[i]`/`level[i+1]` are the glued two-char operator `ab`.
fn glued2(level: &[Tree<'_>], i: usize, a: char, b: char) -> bool {
    let (Some(x), Some(y)) = (level.get(i), level.get(i + 1)) else {
        return false;
    };
    x.is_punct(a) && y.is_punct(b) && x.anchor().glued_to(y.anchor())
}

/// Whether `level[i..]` is the path separator `::`.
fn path_sep(level: &[Tree<'_>], i: usize) -> bool {
    glued2(level, i, ':', ':')
}

// ---------------------------------------------------------------------------
// no-panic
// ---------------------------------------------------------------------------

/// The `no-panic` rule: flags `.unwrap()`, `.expect(…)` and `panic!` in
/// non-test code. `debug_assert!` is deliberately allowed (compiled out
/// of release protocol builds), as are identifiers that merely *contain*
/// the words (`unwrap_or`, `foo_panic`).
pub fn check_no_panics(file: &str, trees: &[Tree<'_>]) -> Vec<Finding> {
    let mut out = Vec::new();
    walk_levels(trees, &mut |level| {
        for i in 0..level.len() {
            if level[i].is_punct('.') {
                let Some(name) = level.get(i + 1).and_then(|t| t.leaf()) else {
                    continue;
                };
                let args = level.get(i + 2).and_then(|t| t.group_with(Delim::Paren));
                let hit = match name.text {
                    "unwrap" => args.is_some_and(|g| g.children.is_empty()),
                    "expect" => args.is_some(),
                    _ => false,
                };
                if hit {
                    out.push(finding(
                        file,
                        name,
                        "no-panic",
                        format!("`.{}(…)` in protocol code", name.text),
                    ));
                }
            }
            if level[i].is_ident("panic")
                && level.get(i + 1).is_some_and(|t| t.is_punct('!'))
                && !level.get(i.wrapping_sub(1)).is_some_and(|t| {
                    // `core::panic!` et al. still count; only a macro
                    // *definition's* name position would differ, which
                    // this workspace forbids anyway.
                    t.is_punct('.')
                })
            {
                out.push(finding(
                    file,
                    level[i].anchor(),
                    "no-panic",
                    "`panic!` in protocol code".to_string(),
                ));
            }
        }
    });
    out
}

// ---------------------------------------------------------------------------
// exhaustive-dispatch
// ---------------------------------------------------------------------------

/// Splits a match body into `(pattern, body)` arm slices. The pattern
/// slice includes any guard; a brace-bodied arm's body slice is the
/// single group tree.
fn match_arms<'a, 'b>(children: &'b [Tree<'a>]) -> Vec<(&'b [Tree<'a>], &'b [Tree<'a>])> {
    let mut arms = Vec::new();
    let mut i = 0;
    while i < children.len() {
        // Pattern: trees until `=>`.
        let start = i;
        while i < children.len() && !glued2(children, i, '=', '>') {
            i += 1;
        }
        let pattern = &children[start..i];
        if i >= children.len() {
            if !pattern.is_empty() {
                arms.push((pattern, &children[i..i]));
            }
            break;
        }
        i += 2; // consume `=>`
        if children
            .get(i)
            .is_some_and(|t| t.group_with(Delim::Brace).is_some())
        {
            arms.push((pattern, &children[i..i + 1]));
            i += 1;
            if children.get(i).is_some_and(|t| t.is_punct(',')) {
                i += 1;
            }
        } else {
            let start = i;
            while i < children.len() && !children[i].is_punct(',') {
                i += 1;
            }
            arms.push((pattern, &children[start..i]));
            i += 1; // consume `,`
        }
    }
    arms
}

/// The `exhaustive-dispatch` rule: flags a wildcard `_` arm (guarded or
/// not) at the top level of any `match msg { … }` block. Nested matches
/// over other scrutinees and `_` bindings inside patterns are untouched.
pub fn check_dispatch_exhaustive(file: &str, trees: &[Tree<'_>]) -> Vec<Finding> {
    let mut out = Vec::new();
    walk_levels(trees, &mut |level| {
        for i in 0..level.len() {
            if !level[i].is_ident("match") || !level.get(i + 1).is_some_and(|t| t.is_ident("msg")) {
                continue;
            }
            let Some(body) = level.get(i + 2).and_then(|t| t.group_with(Delim::Brace)) else {
                continue;
            };
            for (pattern, _) in match_arms(&body.children) {
                let wildcard = pattern.first().is_some_and(|t| t.is_ident("_"))
                    && (pattern.len() == 1 || pattern[1].is_ident("if"));
                if wildcard {
                    out.push(finding(
                        file,
                        pattern[0].anchor(),
                        "exhaustive-dispatch",
                        "wildcard `_` arm in message dispatch — name every message variant"
                            .to_string(),
                    ));
                }
            }
        }
    });
    out
}

// ---------------------------------------------------------------------------
// no-adhoc-print
// ---------------------------------------------------------------------------

/// The `no-adhoc-print` rule: flags `println!`, `eprintln!`, `print!`
/// and `eprint!` in instrumented library code, which must report through
/// `doma-obs` instead (events, metrics, or `console::debug_line`).
pub fn check_no_adhoc_prints(file: &str, trees: &[Tree<'_>]) -> Vec<Finding> {
    const FORBIDDEN: &[&str] = &["println", "eprintln", "print", "eprint"];
    let mut out = Vec::new();
    walk_levels(trees, &mut |level| {
        for i in 0..level.len() {
            let Some(tok) = level[i].leaf() else { continue };
            if tok.kind == TokKind::Ident
                && FORBIDDEN.contains(&tok.text)
                && level.get(i + 1).is_some_and(|t| t.is_punct('!'))
            {
                out.push(finding(
                    file,
                    tok,
                    "no-adhoc-print",
                    format!(
                        "`{}!` in instrumented library code — use doma-obs \
                         (events/metrics or console::debug_line)",
                        tok.text
                    ),
                ));
            }
        }
    });
    out
}

// ---------------------------------------------------------------------------
// thread-containment
// ---------------------------------------------------------------------------

/// The `thread-containment` rule: flags `std::thread` outside the
/// approved fan-out modules. `std::thread::available_parallelism` is
/// allowed anywhere: core-count introspection spawns nothing.
pub fn check_thread_containment(file: &str, trees: &[Tree<'_>]) -> Vec<Finding> {
    let mut out = Vec::new();
    walk_levels(trees, &mut |level| {
        for i in 0..level.len() {
            if level[i].is_ident("std")
                && path_sep(level, i + 1)
                && level.get(i + 3).is_some_and(|t| t.is_ident("thread"))
            {
                let allowed = path_sep(level, i + 4)
                    && level
                        .get(i + 6)
                        .is_some_and(|t| t.is_ident("available_parallelism"));
                if !allowed {
                    out.push(finding(
                        file,
                        level[i].anchor(),
                        "thread-containment",
                        "`std::thread` outside the approved fan-out modules — route \
                         parallelism through doma_sim::shard::run_shards (or the \
                         sweep/torture harnesses)"
                            .to_string(),
                    ));
                }
            }
        }
    });
    out
}

// ---------------------------------------------------------------------------
// net-containment
// ---------------------------------------------------------------------------

/// Socket type names that must not appear outside `doma-net`: naming one
/// is either a direct use or an aliased import of a real socket.
const SOCKET_TYPES: &[&str] = &[
    "TcpListener",
    "TcpStream",
    "UdpSocket",
    "UnixListener",
    "UnixStream",
];

/// The `net-containment` rule: flags `std::net`, `std::os::unix::net`
/// and the socket type names outside `doma-net`. Real I/O lives behind
/// the [`Transport`] abstraction in exactly one crate — anywhere else,
/// a socket breaks deterministic replay and escapes the sim's fault
/// injection, so the protocol/sim/analysis layers must stay socket-free
/// (tests and benches included).
///
/// [`Transport`]: ../doma_protocol/trait.Transport.html
pub fn check_net_containment(file: &str, trees: &[Tree<'_>]) -> Vec<Finding> {
    let mut out = Vec::new();
    walk_levels(trees, &mut |level| {
        for i in 0..level.len() {
            let std_net = level[i].is_ident("std")
                && path_sep(level, i + 1)
                && (level.get(i + 3).is_some_and(|t| t.is_ident("net"))
                    || (level.get(i + 3).is_some_and(|t| t.is_ident("os"))
                        && path_sep(level, i + 4)
                        && level.get(i + 6).is_some_and(|t| t.is_ident("unix"))
                        && path_sep(level, i + 7)
                        && level.get(i + 9).is_some_and(|t| t.is_ident("net"))));
            let socket_type = level[i]
                .leaf()
                .is_some_and(|tok| tok.kind == TokKind::Ident && SOCKET_TYPES.contains(&tok.text));
            if std_net || socket_type {
                out.push(finding(
                    file,
                    level[i].anchor(),
                    "net-containment",
                    "socket API outside doma-net — real I/O is confined to the \
                     doma-net runtime; everything else talks through the \
                     doma_protocol::Transport abstraction"
                        .to_string(),
                ));
            }
        }
    });
    out
}

// ---------------------------------------------------------------------------
// determinism
// ---------------------------------------------------------------------------

/// The `determinism` rule: in the deterministic crates' non-test code,
/// flags the four hazard classes that silently break byte-identical
/// replay:
///
/// * **hash-iteration** — `HashMap`/`HashSet` (iteration order is
///   randomized per process; the deterministic crates use `BTreeMap`/
///   `BTreeSet` exclusively);
/// * **wall-clock** — `Instant`/`SystemTime` (real time leaks
///   scheduling into results);
/// * **env-branch** — `env::var*` (environment-dependent behavior
///   invisible to a seed; sanctioned overrides go in the allowlist);
/// * **fp-ordering** — `.partial_cmp(…)` calls (NaN-partial float
///   ordering; use exact-integer keys or `total_cmp` at a sanctioned,
///   allowlisted site).
pub fn check_determinism(file: &str, trees: &[Tree<'_>]) -> Vec<Finding> {
    let mut out = Vec::new();
    walk_levels(trees, &mut |level| {
        for i in 0..level.len() {
            let Some(tok) = level[i].leaf() else { continue };
            if tok.kind != TokKind::Ident {
                continue;
            }
            match tok.text {
                "HashMap" | "HashSet" => out.push(finding(
                    file,
                    tok,
                    "determinism",
                    format!(
                        "[hash-iteration] `{}` in a deterministic crate — iteration \
                         order is process-random; use the BTree equivalent",
                        tok.text
                    ),
                )),
                "Instant" | "SystemTime" => out.push(finding(
                    file,
                    tok,
                    "determinism",
                    format!(
                        "[wall-clock] `{}` in a deterministic crate — real time must \
                         not influence simulated behavior",
                        tok.text
                    ),
                )),
                "env"
                    if path_sep(level, i + 1)
                        && level
                            .get(i + 3)
                            .and_then(|t| t.leaf())
                            .is_some_and(|t| t.text.starts_with("var")) =>
                {
                    out.push(finding(
                        file,
                        tok,
                        "determinism",
                        "[env-branch] `env::var` in a deterministic crate — behavior \
                         must be a function of the seed, not the environment"
                            .to_string(),
                    ))
                }
                "partial_cmp"
                    if level
                        .get(i.wrapping_sub(1))
                        .is_some_and(|t| t.is_punct('.'))
                        && level
                            .get(i + 1)
                            .is_some_and(|t| t.group_with(Delim::Paren).is_some()) =>
                {
                    out.push(finding(
                        file,
                        tok,
                        "determinism",
                        "[fp-ordering] `.partial_cmp(…)` call in a deterministic crate \
                         — NaN-partial float ordering; key on exact integers instead"
                            .to_string(),
                    ))
                }
                _ => {}
            }
        }
    });
    out
}

// ---------------------------------------------------------------------------
// lock-order
// ---------------------------------------------------------------------------

/// One lock-acquisition-while-holding edge in the static graph.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct LockEdge {
    from: String,
    to: String,
    file: String,
    line: usize,
    col: usize,
}

#[derive(Debug)]
struct LockScan {
    edges: Vec<LockEdge>,
    findings: Vec<Finding>,
}

/// A live guard: the binding name (if `let`-bound) and the lock identity.
#[derive(Debug, Clone)]
struct Held {
    name: Option<String>,
    lock: String,
}

/// Renders the receiver path of a postfix `.lock()` chain, walking left
/// from the `.`: identifier/field/`::`-path segments and call results.
fn receiver_of(level: &[Tree<'_>], dot: usize) -> String {
    let mut j = dot;
    // Walk left while the previous trees continue a postfix expression.
    while j > 0 {
        let prev = &level[j - 1];
        let continues = match prev {
            Tree::Leaf(t) => {
                (t.kind == TokKind::Ident && t.text != "let" && t.text != "mut")
                    || t.kind == TokKind::Num
                    || t.is_punct('.')
                    || t.is_punct(':')
            }
            Tree::Group(g) => {
                // A call/index result continues the chain only if it is
                // itself preceded by an identifier (its callee).
                g.delim != Delim::Brace
            }
        };
        if !continues {
            break;
        }
        j -= 1;
    }
    let mut parts = Vec::new();
    for t in &level[j..dot] {
        match t {
            Tree::Leaf(tok) => parts.push(tok.text.to_string()),
            Tree::Group(g) => parts.push(match g.delim {
                Delim::Paren => "()".to_string(),
                Delim::Bracket => "[]".to_string(),
                Delim::Brace => "{}".to_string(),
            }),
        }
    }
    parts.concat()
}

/// Whether `level[i..]` is a lock acquisition: `.lock()`, `.read()` or
/// `.write()` with *empty* parentheses (the `Mutex`/`RwLock` signatures;
/// `io::Read::read(buf)` and friends take arguments).
fn acquisition_at<'a>(level: &[Tree<'a>], i: usize) -> Option<&'a str> {
    if !level[i].is_punct('.') {
        return None;
    }
    let name = level.get(i + 1).and_then(|t| t.leaf())?;
    if !matches!(name.text, "lock" | "read" | "write") {
        return None;
    }
    let args = level.get(i + 2).and_then(|t| t.group_with(Delim::Paren))?;
    args.children.is_empty().then_some(name.text)
}

/// Scans one block's children as statements, tracking live guards.
fn scan_lock_block(
    file: &str,
    level: &[Tree<'_>],
    impl_ty: Option<&str>,
    held: &mut Vec<Held>,
    scan: &mut LockScan,
) {
    let base = held.len();
    let mut i = 0;
    while i < level.len() {
        // Statement: trees until a top-level `;`.
        let start = i;
        while i < level.len() && !level[i].is_punct(';') {
            i += 1;
        }
        let stmt = &level[start..i];
        i += 1; // past the `;` (or end)

        let let_bound = stmt.first().is_some_and(|t| t.is_ident("let"));
        let bind_name = if let_bound {
            let mut k = 1;
            if stmt.get(k).is_some_and(|t| t.is_ident("mut")) {
                k += 1;
            }
            stmt.get(k)
                .and_then(|t| t.leaf())
                .filter(|t| t.kind == TokKind::Ident)
                .map(|t| t.text.to_string())
        } else {
            None
        };

        // `drop(name)` releases a guard early.
        for (k, t) in stmt.iter().enumerate() {
            if t.is_ident("drop") {
                if let Some(args) = stmt.get(k + 1).and_then(|t| t.group_with(Delim::Paren)) {
                    if let [only] = args.children.as_slice() {
                        if let Some(tok) = only.leaf() {
                            held.retain(|h| h.name.as_deref() != Some(tok.text));
                        }
                    }
                }
            }
        }

        // Acquisitions in this statement (tracking temporaries so that
        // `f(a.lock(), b.lock())` still yields an a→b edge), recursing
        // into nested non-brace groups inline and brace groups as
        // sub-blocks.
        let mut stmt_acqs: Vec<String> = Vec::new();
        scan_lock_stmt(file, stmt, impl_ty, held, &mut stmt_acqs, scan);
        if let Some(name) = bind_name {
            for lock in stmt_acqs {
                held.push(Held {
                    name: Some(name.clone()),
                    lock,
                });
            }
        }
    }
    held.truncate(base);
}

fn scan_lock_stmt(
    file: &str,
    stmt: &[Tree<'_>],
    impl_ty: Option<&str>,
    held: &mut Vec<Held>,
    stmt_acqs: &mut Vec<String>,
    scan: &mut LockScan,
) {
    let mut k = 0;
    while k < stmt.len() {
        if let Some(method) = acquisition_at(stmt, k) {
            let recv = receiver_of(stmt, k);
            let lock = match impl_ty {
                Some(t) => format!("{t}.{recv}"),
                None => recv,
            };
            let site = stmt[k + 1].anchor();
            for h in held.iter().map(|h| &h.lock).chain(stmt_acqs.iter()) {
                if *h == lock {
                    scan.findings.push(finding(
                        file,
                        site,
                        "lock-order",
                        format!(
                            "re-entrant `.{method}()` on `{lock}` while its guard is \
                             live in the same scope — self-deadlock"
                        ),
                    ));
                } else {
                    scan.edges.push(LockEdge {
                        from: h.clone(),
                        to: lock.clone(),
                        file: file.to_string(),
                        line: site.line as usize,
                        col: site.col as usize,
                    });
                }
            }
            stmt_acqs.push(lock);
            k += 3;
            continue;
        }
        if let Some(g) = stmt[k].group() {
            if g.delim == Delim::Brace {
                // A nested block scopes its own guards.
                scan_lock_block(file, &g.children, impl_ty, held, scan);
            } else {
                scan_lock_stmt(file, &g.children, impl_ty, held, stmt_acqs, scan);
            }
        }
        k += 1;
    }
}

/// Finds `impl` headers and `fn` bodies, scanning each body for lock
/// acquisitions under the enclosing type's name.
fn scan_lock_items(file: &str, level: &[Tree<'_>], impl_ty: Option<&str>, scan: &mut LockScan) {
    let mut i = 0;
    while i < level.len() {
        if level[i].is_ident("impl") {
            // Type name: the last depth-0 path identifier before the
            // body, preferring the path after `for` and stopping at
            // `where`. Angle-bracket depth is tracked over `<`/`>`.
            let mut depth = 0i32;
            let mut name: Option<String> = None;
            let mut j = i + 1;
            let body = loop {
                match level.get(j) {
                    None => break None,
                    Some(Tree::Group(g)) if g.delim == Delim::Brace && depth <= 0 => {
                        break Some(g);
                    }
                    Some(t) => {
                        if t.is_punct('<') {
                            depth += 1;
                        } else if t.is_punct('>') {
                            depth -= 1;
                        } else if depth <= 0 {
                            if t.is_ident("where") {
                                // Skip ahead to the body.
                            } else if t.is_ident("for") {
                                name = None;
                            } else if let Some(tok) = t.leaf() {
                                if tok.kind == TokKind::Ident && name.is_none() {
                                    name = Some(tok.text.to_string());
                                }
                            }
                        }
                        j += 1;
                    }
                }
            };
            if let Some(body) = body {
                scan_lock_items(file, &body.children, name.as_deref().or(impl_ty), scan);
                i = j + 1;
                continue;
            }
        }
        if level[i].is_ident("fn") {
            // Find the first brace group at this level after the header.
            let mut j = i + 1;
            while j < level.len() {
                if let Some(g) = level[j].group_with(Delim::Brace) {
                    let mut held = Vec::new();
                    scan_lock_block(file, &g.children, impl_ty, &mut held, scan);
                    break;
                }
                j += 1;
            }
            i = j + 1;
            continue;
        }
        if let Some(g) = level[i].group() {
            scan_lock_items(file, &g.children, impl_ty, scan);
        }
        i += 1;
    }
}

/// The `lock-order` rule, across the audited crates: builds the static
/// lock-acquisition graph (an edge A→B for every `.lock()`/`.read()`/
/// `.write()` on B while a guard of A is live in the same scope), flags
/// re-entrant acquisition of the same lock immediately, and rejects any
/// cycle in the graph — the static shape of a deadlock.
pub fn check_lock_order(files: &[(&str, &[Tree<'_>])]) -> Vec<Finding> {
    let mut scan = LockScan {
        edges: Vec::new(),
        findings: Vec::new(),
    };
    for (file, trees) in files {
        scan_lock_items(file, trees, None, &mut scan);
    }
    let mut edges = scan.edges;
    edges.sort();
    edges.dedup();

    // Cycle detection over the deduped edge set: adjacency + DFS from
    // every node in sorted order; each distinct cycle is reported once,
    // canonicalized by its minimal rotation.
    let mut adj: BTreeMap<&str, Vec<&LockEdge>> = BTreeMap::new();
    for e in &edges {
        adj.entry(e.from.as_str()).or_default().push(e);
    }
    let mut seen_cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    let mut findings = scan.findings;
    for start in adj.keys().copied().collect::<Vec<_>>() {
        let mut path: Vec<&LockEdge> = Vec::new();
        let mut on_path: Vec<&str> = vec![start];
        dfs_cycles(
            start,
            &adj,
            &mut path,
            &mut on_path,
            &mut seen_cycles,
            &mut findings,
        );
    }
    findings
}

fn dfs_cycles<'e>(
    node: &'e str,
    adj: &BTreeMap<&'e str, Vec<&'e LockEdge>>,
    path: &mut Vec<&'e LockEdge>,
    on_path: &mut Vec<&'e str>,
    seen: &mut BTreeSet<Vec<String>>,
    findings: &mut Vec<Finding>,
) {
    let Some(nexts) = adj.get(node) else { return };
    for edge in nexts {
        if let Some(pos) = on_path.iter().position(|n| *n == edge.to) {
            // A cycle: nodes on_path[pos..] + closing edge.
            let cycle_edges: Vec<&LockEdge> = path[pos..].iter().copied().chain([*edge]).collect();
            let mut nodes: Vec<String> = cycle_edges.iter().map(|e| e.from.clone()).collect();
            // Canonical rotation: start at the minimal node.
            let min = (0..nodes.len())
                .min_by_key(|&i| nodes[i].as_str())
                .unwrap_or(0);
            nodes.rotate_left(min);
            if seen.insert(nodes.clone()) {
                let site = cycle_edges
                    .iter()
                    .min_by_key(|e| (&e.file, e.line, e.col))
                    .copied();
                if let Some(site) = site {
                    let mut chain = nodes.clone();
                    chain.push(nodes[0].clone());
                    findings.push(Finding {
                        file: site.file.clone(),
                        line: site.line,
                        col: site.col,
                        rule: "lock-order",
                        message: format!(
                            "lock acquisition cycle {} — acquire locks in one global order",
                            chain.join(" -> ")
                        ),
                    });
                }
            }
            continue;
        }
        path.push(edge);
        on_path.push(&edge.to);
        dfs_cycles(&edge.to, adj, path, on_path, seen, findings);
        on_path.pop();
        path.pop();
    }
}

// ---------------------------------------------------------------------------
// message-flow
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct MsgCounts {
    constructed: BTreeMap<String, usize>,
    dispatched: BTreeMap<String, usize>,
}

fn msg_path_at(level: &[Tree<'_>], i: usize, enum_name: &str) -> Option<String> {
    if !level[i].is_ident(enum_name) || !path_sep(level, i + 1) {
        return None;
    }
    let v = level.get(i + 3)?.leaf()?;
    (v.kind == TokKind::Ident).then(|| v.text.to_string())
}

fn scan_msg_exprs(level: &[Tree<'_>], enum_name: &str, counts: &mut MsgCounts) {
    let mut i = 0;
    while i < level.len() {
        // `match scrutinee { arms }`
        if level[i].is_ident("match") {
            let mut j = i + 1;
            while j < level.len() && level[j].group_with(Delim::Brace).is_none() {
                j += 1;
            }
            scan_msg_exprs(&level[i + 1..j], enum_name, counts);
            if let Some(body) = level.get(j).and_then(|t| t.group_with(Delim::Brace)) {
                for (pattern, arm_body) in match_arms(&body.children) {
                    scan_msg_patterns(pattern, enum_name, counts);
                    scan_msg_exprs(arm_body, enum_name, counts);
                }
            }
            i = j + 1;
            continue;
        }
        // `matches!(expr, pattern)`
        if level[i].is_ident("matches") && level.get(i + 1).is_some_and(|t| t.is_punct('!')) {
            if let Some(g) = level.get(i + 2).and_then(|t| t.group_with(Delim::Paren)) {
                let split = g
                    .children
                    .iter()
                    .position(|t| t.is_punct(','))
                    .unwrap_or(g.children.len());
                scan_msg_exprs(&g.children[..split], enum_name, counts);
                if split < g.children.len() {
                    scan_msg_patterns(&g.children[split + 1..], enum_name, counts);
                }
                i += 3;
                continue;
            }
        }
        // `if let` / `while let` / plain `let`: the left of `=` is a
        // pattern.
        if level[i].is_ident("let") {
            let mut j = i + 1;
            while j < level.len() {
                let single_eq = level[j].is_punct('=')
                    && !glued2(level, j, '=', '=')
                    && !glued2(level, j, '=', '>')
                    && !level.get(j.wrapping_sub(1)).is_some_and(|t| {
                        t.is_punct('=') || t.is_punct('!') || t.is_punct('<') || t.is_punct('>')
                    });
                if single_eq || level[j].is_punct(';') {
                    break;
                }
                j += 1;
            }
            scan_msg_patterns(&level[i + 1..j.min(level.len())], enum_name, counts);
            i = j + 1;
            continue;
        }
        if let Some(v) = msg_path_at(level, i, enum_name) {
            *counts.constructed.entry(v).or_default() += 1;
            i += 4;
            continue;
        }
        if let Some(g) = level[i].group() {
            scan_msg_exprs(&g.children, enum_name, counts);
        }
        i += 1;
    }
}

fn scan_msg_patterns(level: &[Tree<'_>], enum_name: &str, counts: &mut MsgCounts) {
    let mut i = 0;
    while i < level.len() {
        // A guard switches back to expression context.
        if level[i].is_ident("if") {
            scan_msg_exprs(&level[i + 1..], enum_name, counts);
            return;
        }
        if let Some(v) = msg_path_at(level, i, enum_name) {
            *counts.dispatched.entry(v).or_default() += 1;
            i += 4;
            continue;
        }
        if let Some(g) = level[i].group() {
            scan_msg_patterns(&g.children, enum_name, counts);
        }
        i += 1;
    }
}

/// The `message-flow` rule: parses the `enum DomMsg` definition, then
/// cross-checks every variant against all non-test sources of the
/// protocol crate. A variant no site constructs is unsendable; a variant
/// no `match`/`matches!`/`let`-pattern dispatches is dead on arrival —
/// both are protocol-surface rot the type system cannot see.
pub fn check_message_flow(enum_name: &str, files: &[(&str, &[Tree<'_>])]) -> Vec<Finding> {
    // 1. Find the enum definition and its variants.
    let mut variants: Vec<(String, String, usize, usize)> = Vec::new(); // (name, file, line, col)
    for (file, trees) in files {
        walk_levels(trees, &mut |level| {
            for i in 0..level.len() {
                if !level[i].is_ident("enum")
                    || !level.get(i + 1).is_some_and(|t| t.is_ident(enum_name))
                {
                    continue;
                }
                let Some(body) = level.get(i + 2).and_then(|t| t.group_with(Delim::Brace)) else {
                    continue;
                };
                let kids = &body.children;
                let mut j = 0;
                while j < kids.len() {
                    // Skip attributes on the variant.
                    if kids[j].is_punct('#')
                        && kids
                            .get(j + 1)
                            .is_some_and(|t| t.group_with(Delim::Bracket).is_some())
                    {
                        j += 2;
                        continue;
                    }
                    if let Some(tok) = kids[j].leaf().filter(|t| t.kind == TokKind::Ident) {
                        variants.push((
                            tok.text.to_string(),
                            file.to_string(),
                            tok.line as usize,
                            tok.col as usize,
                        ));
                    }
                    // Skip to the variant's trailing comma.
                    while j < kids.len() && !kids[j].is_punct(',') {
                        j += 1;
                    }
                    j += 1;
                }
            }
        });
    }
    if variants.is_empty() {
        return Vec::new();
    }

    // 2. Tally construction and dispatch sites across all files.
    let mut counts = MsgCounts::default();
    for (_, trees) in files {
        scan_msg_exprs(trees, enum_name, &mut counts);
    }

    let mut out = Vec::new();
    for (name, file, line, col) in variants {
        if counts.constructed.get(&name).copied().unwrap_or(0) == 0 {
            out.push(Finding {
                file: file.clone(),
                line,
                col,
                rule: "message-flow",
                message: format!(
                    "`{enum_name}::{name}` is never constructed in non-test code — \
                     an unsendable protocol message"
                ),
            });
        }
        if counts.dispatched.get(&name).copied().unwrap_or(0) == 0 {
            out.push(Finding {
                file,
                line,
                col,
                rule: "message-flow",
                message: format!(
                    "`{enum_name}::{name}` is never matched by any dispatch — \
                     a dead protocol message"
                ),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// obs-catalog
// ---------------------------------------------------------------------------

/// Extracts the metric catalog from DESIGN.md §8: every backticked
/// `component.name` token (lowercase identifiers joined by dots) between
/// the `## 8.` heading and the next `## ` heading.
pub fn design_metric_catalog(design: &str) -> BTreeSet<String> {
    let mut catalog = BTreeSet::new();
    let mut in_section = false;
    for line in design.lines() {
        if line.starts_with("## ") {
            in_section = line.starts_with("## 8");
            continue;
        }
        if !in_section {
            continue;
        }
        for span in line.split('`').skip(1).step_by(2) {
            let ok = span.contains('.')
                && span.starts_with(|c: char| c.is_ascii_lowercase())
                && span
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '.');
            if ok {
                catalog.insert(span.to_string());
            }
        }
    }
    catalog
}

fn str_leaf<'a>(tree: &Tree<'a>) -> Option<&'a str> {
    let tok = tree.leaf()?;
    if tok.kind != TokKind::Str {
        return None;
    }
    // Strip the quotes (plain `"…"` literals only — metric names never
    // need raw strings or escapes).
    tok.text.strip_prefix('"')?.strip_suffix('"')
}

fn split_args<'a, 'b>(children: &'b [Tree<'a>]) -> Vec<&'b [Tree<'a>]> {
    let mut out = Vec::new();
    let mut start = 0;
    for (i, t) in children.iter().enumerate() {
        if t.is_punct(',') {
            out.push(&children[start..i]);
            start = i + 1;
        }
    }
    if start < children.len() {
        out.push(&children[start..]);
    }
    out
}

/// The `obs-catalog` rule: every metric registered through the
/// `doma-obs` registry with literal `(component, name)` arguments —
/// `.counter(…)`, `.gauge(…)`, `.histogram(…)` and registry `.add(…)` —
/// must appear as `component.name` in the DESIGN §8 catalog, and literal
/// label keys must be sorted (the registry sorts labels for key
/// identity; unsorted call sites drift apart under grep and diff).
pub fn check_obs_catalog(
    files: &[(&str, &[Tree<'_>])],
    catalog: &BTreeSet<String>,
) -> Vec<Finding> {
    const METHODS: &[&str] = &["counter", "gauge", "histogram", "add"];
    let mut out = Vec::new();
    for (file, trees) in files {
        walk_levels(trees, &mut |level| {
            for i in 0..level.len() {
                if !level[i].is_punct('.') {
                    continue;
                }
                let Some(name_tok) = level.get(i + 1).and_then(|t| t.leaf()) else {
                    continue;
                };
                if !METHODS.contains(&name_tok.text) {
                    continue;
                }
                let Some(args) = level.get(i + 2).and_then(|t| t.group_with(Delim::Paren)) else {
                    continue;
                };
                let args = split_args(&args.children);
                let (Some(comp), Some(metric)) = (
                    args.first()
                        .filter(|a| a.len() == 1)
                        .and_then(|a| str_leaf(&a[0])),
                    args.get(1)
                        .filter(|a| a.len() == 1)
                        .and_then(|a| str_leaf(&a[0])),
                ) else {
                    continue;
                };
                let full = format!("{comp}.{metric}");
                if !catalog.contains(&full) {
                    out.push(finding(
                        file,
                        args[1][0].anchor(),
                        "obs-catalog",
                        format!(
                            "metric `{full}` is not in the DESIGN §8 catalog — name \
                             drift breaks obs JSON diffing; add it to the table or fix \
                             the call site"
                        ),
                    ));
                }
                // Label keys: a literal `&[("k", v), …]` third argument.
                if let Some(labels) = args.get(2) {
                    let bracket = match labels {
                        [amp, group] if amp.is_punct('&') => group.group_with(Delim::Bracket),
                        _ => None,
                    };
                    if let Some(list) = bracket {
                        let mut prev: Option<(&str, &Token<'_>)> = None;
                        for tuple in &list.children {
                            let Some(g) = tuple.group_with(Delim::Paren) else {
                                continue;
                            };
                            let Some(key) = g.children.first().and_then(str_leaf) else {
                                continue;
                            };
                            let key_tok = g.children[0].anchor();
                            if let Some((p, _)) = prev {
                                if p > key {
                                    out.push(finding(
                                        file,
                                        key_tok,
                                        "obs-catalog",
                                        format!(
                                            "label keys not sorted: `{key}` after `{p}` \
                                             — the registry keys metrics by sorted \
                                             labels; sort them at the call site"
                                        ),
                                    ));
                                }
                            }
                            prev = Some((key, key_tok));
                        }
                    }
                }
            }
        });
    }
    out
}

// ---------------------------------------------------------------------------
// span-catalog
// ---------------------------------------------------------------------------

/// Extracts the span catalog from DESIGN.md §13: every backticked
/// `component.name` token (lowercase identifiers joined by dots) between
/// the `## 13.` heading and the next `## ` heading.
pub fn design_span_catalog(design: &str) -> BTreeSet<String> {
    let mut catalog = BTreeSet::new();
    let mut in_section = false;
    for line in design.lines() {
        if line.starts_with("## ") {
            in_section = line.starts_with("## 13");
            continue;
        }
        if !in_section {
            continue;
        }
        for span in line.split('`').skip(1).step_by(2) {
            let ok = span.contains('.')
                && span.starts_with(|c: char| c.is_ascii_lowercase())
                && span
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '.');
            if ok {
                catalog.insert(span.to_string());
            }
        }
    }
    catalog
}

/// The `span-catalog` rule: every span opened with a literal name —
/// `.span_enter(time, "name", …)` call sites and `span!(log, time,
/// "name", …)` macro invocations — must appear backticked in the DESIGN
/// §13 span catalog, mirroring `obs-catalog`'s §8 discipline. The
/// Chrome trace exporter, the critical-path report and perfetto queries
/// all key on span names, so an undocumented name drifts silently.
pub fn check_span_catalog(
    files: &[(&str, &[Tree<'_>])],
    catalog: &BTreeSet<String>,
) -> Vec<Finding> {
    let mut out = Vec::new();
    for (file, trees) in files {
        walk_levels(trees, &mut |level| {
            for i in 0..level.len() {
                // `.span_enter(time, "name", fields)` method calls: the
                // name is the second argument.
                let method = level[i].is_punct('.')
                    && level
                        .get(i + 1)
                        .and_then(|t| t.leaf())
                        .is_some_and(|t| t.text == "span_enter");
                // `span!(log, time, "name", k = v, …)` macro
                // invocations: the name is the third operand.
                let mac =
                    level[i].is_ident("span") && level.get(i + 1).is_some_and(|t| t.is_punct('!'));
                let (group_at, name_arg) = if method {
                    (i + 2, 1)
                } else if mac {
                    (i + 2, 2)
                } else {
                    continue;
                };
                let Some(args) = level.get(group_at).and_then(|t| t.group_with(Delim::Paren))
                else {
                    continue;
                };
                let args = split_args(&args.children);
                let Some(name) = args
                    .get(name_arg)
                    .filter(|a| a.len() == 1)
                    .and_then(|a| str_leaf(&a[0]))
                else {
                    continue;
                };
                if !catalog.contains(name) {
                    out.push(finding(
                        file,
                        args[name_arg][0].anchor(),
                        "span-catalog",
                        format!(
                            "span `{name}` is not in the DESIGN §13 span catalog — the \
                             trace exporter and critical-path report key on span names; \
                             add it to the table or fix the call site"
                        ),
                    ));
                }
            }
        });
    }
    out
}

// ---------------------------------------------------------------------------
// lint-headers & scenario-digest (text-level, ported unchanged)
// ---------------------------------------------------------------------------

/// The `lint-headers` rule: every crate root must opt into the
/// workspace's documentation and idiom lints.
pub fn check_lint_headers(file: &str, src: &str) -> Vec<Finding> {
    ["#![warn(missing_docs)]", "#![warn(rust_2018_idioms)]"]
        .iter()
        .filter(|pragma| !src.contains(*pragma))
        .map(|pragma| Finding {
            file: file.to_string(),
            line: 1,
            col: 1,
            rule: "lint-headers",
            message: format!("crate root missing `{pragma}`"),
        })
        .collect()
}

/// The `scenario-digest` rule: every builtin scenario file must be
/// syntactically well-formed TOML-subset (each non-blank line a
/// `[section]` / `[[section]]` header or a `key = value` entry) and must
/// pin a golden obs digest — a `[golden]` section whose `digest` entry is
/// `"0x"` + 16 hex digits. A builtin without a pin is a hole in the
/// golden-trace conformance wall. (Deliberately text-level: the real
/// parser and digest replay run in `doma-scenario`'s own tests.)
pub fn check_scenario_file(file: &str, src: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut in_golden = false;
    let mut digest_line: Option<(usize, String)> = None;
    for (idx, raw) in src.lines().enumerate() {
        // Strip a `#` comment, ignoring `#` inside double quotes.
        let mut in_str = false;
        let mut escaped = false;
        let mut body = raw;
        for (pos, c) in raw.char_indices() {
            match c {
                _ if escaped => escaped = false,
                '\\' if in_str => escaped = true,
                '"' => in_str = !in_str,
                '#' if !in_str => {
                    body = &raw[..pos];
                    break;
                }
                _ => {}
            }
        }
        let line = body.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(section) = line
            .strip_prefix("[[")
            .and_then(|r| r.strip_suffix("]]"))
            .or_else(|| line.strip_prefix('[').and_then(|r| r.strip_suffix(']')))
        {
            in_golden = section.trim() == "golden";
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            out.push(Finding {
                file: file.to_string(),
                line: idx + 1,
                col: 1,
                rule: "scenario-digest",
                message: format!("not a section header or `key = value` entry: `{line}`"),
            });
            continue;
        };
        if in_golden && key.trim() == "digest" {
            digest_line = Some((idx + 1, value.trim().to_string()));
        }
    }
    match digest_line {
        None => out.push(Finding {
            file: file.to_string(),
            line: 1,
            col: 1,
            rule: "scenario-digest",
            message: "no `[golden]` digest pinned — every builtin scenario must name its \
                      golden obs digest"
                .to_string(),
        }),
        Some((line, value)) => {
            let hex = value
                .strip_prefix("\"0x")
                .and_then(|r| r.strip_suffix('"'))
                .unwrap_or("");
            if hex.len() != 16 || !hex.chars().all(|c| c.is_ascii_hexdigit()) {
                out.push(Finding {
                    file: file.to_string(),
                    line,
                    col: 1,
                    rule: "scenario-digest",
                    message: format!("golden digest must be \"0x\" + 16 hex digits, got {value}"),
                });
            }
        }
    }
    out
}

//! The checked-in allowlist for sanctioned rule exceptions.
//!
//! Format (`lint-allow.list` at the workspace root): one entry per line,
//! `#` comments and blank lines ignored. An entry is
//!
//! ```text
//! <rule-id> <file-path> [message substring…]
//! ```
//!
//! split on whitespace; everything after the file path is a single
//! needle matched against the finding's message (empty needle matches
//! any message). An entry suppresses every finding it matches. An entry
//! that matches *no* finding is itself an error — a stale suppression
//! hides a rule that silently stopped firing — surfaced as a
//! `stale-allowlist` finding at the entry's line.

use crate::Finding;

/// One parsed allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// 1-indexed line in the allowlist file (for stale reporting).
    pub line: usize,
    /// The rule id the entry suppresses.
    pub rule: String,
    /// The workspace-relative file the entry applies to.
    pub file: String,
    /// Substring the finding's message must contain (empty = any).
    pub needle: String,
}

impl AllowEntry {
    fn matches(&self, f: &Finding) -> bool {
        f.rule == self.rule && f.file == self.file && f.message.contains(&self.needle)
    }
}

/// The parsed allowlist.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Allowlist {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parses the allowlist text. Malformed lines (fewer than two
    /// fields) are errors: a typo'd suppression must not silently
    /// suppress nothing.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut fields = line.split_whitespace();
            let (Some(rule), Some(file)) = (fields.next(), fields.next()) else {
                return Err(format!(
                    "lint-allow.list:{}: entry needs `<rule> <file> [needle…]`, got `{line}`",
                    idx + 1
                ));
            };
            entries.push(AllowEntry {
                line: idx + 1,
                rule: rule.to_string(),
                file: file.to_string(),
                needle: fields.collect::<Vec<_>>().join(" "),
            });
        }
        Ok(Allowlist { entries })
    }

    /// Applies the allowlist: returns the findings that survive, with a
    /// `stale-allowlist` finding appended for every entry that matched
    /// nothing.
    pub fn apply(&self, findings: Vec<Finding>, list_file: &str) -> Vec<Finding> {
        let mut used = vec![false; self.entries.len()];
        let mut kept = Vec::with_capacity(findings.len());
        for f in findings {
            let mut suppressed = false;
            for (i, e) in self.entries.iter().enumerate() {
                if e.matches(&f) {
                    used[i] = true;
                    suppressed = true;
                }
            }
            if !suppressed {
                kept.push(f);
            }
        }
        for (e, used) in self.entries.iter().zip(used) {
            if !used {
                kept.push(Finding {
                    file: list_file.to_string(),
                    line: e.line,
                    col: 1,
                    rule: "stale-allowlist",
                    message: format!(
                        "entry `{} {}{}{}` matches no finding — the sanctioned \
                         exception is gone; remove the entry",
                        e.rule,
                        e.file,
                        if e.needle.is_empty() { "" } else { " " },
                        e.needle
                    ),
                });
            }
        }
        kept
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, msg: &str) -> Finding {
        Finding {
            file: file.to_string(),
            line: 3,
            col: 7,
            rule,
            message: msg.to_string(),
        }
    }

    #[test]
    fn entries_suppress_and_stale_entries_are_findings() {
        let list = Allowlist::parse(
            "# comment\n\
             determinism crates/x/src/a.rs env::var\n\
             no-panic crates/x/src/b.rs\n",
        )
        .expect("parses");
        let out = list.apply(
            vec![
                finding(
                    "determinism",
                    "crates/x/src/a.rs",
                    "[env-branch] `env::var` …",
                ),
                finding(
                    "determinism",
                    "crates/x/src/a.rs",
                    "[hash-iteration] `HashMap`",
                ),
            ],
            "lint-allow.list",
        );
        // env::var suppressed; HashMap kept; no-panic entry stale.
        assert_eq!(out.len(), 2);
        assert!(out.iter().any(|f| f.message.contains("hash-iteration")));
        let stale = out
            .iter()
            .find(|f| f.rule == "stale-allowlist")
            .expect("stale");
        assert_eq!(stale.file, "lint-allow.list");
        assert_eq!(stale.line, 3);
    }

    #[test]
    fn malformed_entries_are_rejected() {
        assert!(Allowlist::parse("just-one-field\n").is_err());
        assert!(Allowlist::parse("").expect("empty ok").entries.is_empty());
    }
}

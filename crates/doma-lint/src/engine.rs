//! The lint engine: workspace loading, rule orchestration, allowlist
//! application, and byte-stable rendering.
//!
//! [`run`] is pure — it consumes an in-memory [`Workspace`], so the
//! mutation self-tests feed it synthetic workspaces without touching
//! the disk; [`load_workspace`] walks a real checkout. Findings are
//! sorted by `(file, line, col, rule, message)` and rendered with a
//! hand-rolled JSON writer, so two runs over the same tree are
//! byte-identical — the same determinism bar the obs and scenario walls
//! hold themselves to (verify.sh diffs two invocations).

use crate::allow::Allowlist;
use crate::rules;
use crate::tree::{parse, strip_cfg_test, Tree};
use crate::Finding;
use std::path::Path;

/// Crates whose non-test code must never panic. `doma-algorithms` joined
/// when its baselines were promoted to first-class tournament entrants:
/// every allocator on the roster now runs inside the protocol sim as a
/// plan oracle, so a panic there takes the whole cluster down.
pub const NO_PANIC_CRATES: &[&str] = &["doma-algorithms", "doma-protocol", "doma-sim"];
/// Crates whose message dispatch must name every variant.
pub const DISPATCH_CRATES: &[&str] = &["doma-protocol"];
/// Instrumented crates whose library code must not print ad hoc: output
/// flows through the `doma-obs` event log / metric registry (or the
/// sanctioned `console::debug_line` choke point).
pub const NO_PRINT_CRATES: &[&str] = &[
    "doma-obs",
    "doma-sim",
    "doma-protocol",
    "doma-fault",
    "doma-check",
];
/// Crates whose non-test code must be a pure function of the seed: the
/// golden obs digests and the sharded-merge bit-identity both assume it.
pub const DETERMINISM_CRATES: &[&str] = &["doma-sim", "doma-protocol", "doma-obs", "doma-scenario"];
/// Crates audited by the static lock-acquisition-order graph.
pub const LOCK_ORDER_CRATES: &[&str] = &["doma-sim"];
/// Crates whose metric registrations must match the DESIGN §8 catalog
/// and whose literal span names must match the DESIGN §13 span catalog.
pub const OBS_CATALOG_CRATES: &[&str] = &[
    "doma-obs",
    "doma-sim",
    "doma-protocol",
    "doma-fault",
    "doma-check",
    "doma-scenario",
];
/// The only modules allowed to touch `std::thread`: the audited fan-out
/// points. Everything else — every crate, benches and tests included —
/// must stay single-threaded or route through `doma_sim::shard`. The
/// phase profiler is on the list because it re-times the spawn path
/// itself (the `spawn` phase of `BENCH_prof.json` *is* that overhead).
pub const THREAD_MODULES: &[&str] = &[
    "doma-analysis/src/sweep.rs",
    "doma-sim/src/shard.rs",
    "doma-fault/src/torture.rs",
    "bench/benches/shard_prof.rs",
    // The real runtime: one thread per node plus per-connection readers,
    // and the driver's quiescence barrier sleeps between poll rounds.
    "doma-net/src/runtime.rs",
    "doma-net/src/cluster.rs",
];
/// The only crate allowed to touch real sockets (`std::net`, Unix domain
/// sockets): the transport runtime. Everywhere else — tests and benches
/// included — protocol traffic flows through `doma_protocol::Transport`,
/// keeping the deterministic twin authoritative.
pub const NET_CRATE: &str = "doma-net";
/// The enum audited by the `message-flow` rule.
pub const MESSAGE_ENUM: &str = "DomMsg";
/// The allowlist's workspace-relative path.
pub const ALLOWLIST_FILE: &str = "lint-allow.list";

/// One source file of the workspace, path workspace-relative with `/`
/// separators.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path (`crates/doma-sim/src/engine.rs`).
    pub path: String,
    /// The owning crate's directory name (`doma-sim`).
    pub crate_name: String,
    /// Whether the file lives under the crate's `src/` (vs. `tests/`,
    /// `benches/`).
    pub in_src: bool,
    /// File contents.
    pub text: String,
}

/// Everything the engine lints, fully in memory.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    /// All `.rs` files under `crates/*/{src,benches,tests}`.
    pub files: Vec<SourceFile>,
    /// Builtin scenario files: `(path, text)`.
    pub scenarios: Vec<(String, String)>,
    /// `DESIGN.md` contents (source of the §8 metric catalog and the
    /// §13 span catalog).
    pub design: String,
    /// `lint-allow.list` contents, if the file exists.
    pub allowlist: Option<String>,
    /// Number of crate directories seen (reporting only).
    pub crates: usize,
}

/// The result of a lint run.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// Findings, sorted by `(file, line, col, rule, message)`.
    pub findings: Vec<Finding>,
    /// Number of files (sources + scenarios) checked.
    pub files_checked: usize,
    /// Number of crate directories seen.
    pub crates: usize,
}

fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.col, a.rule, &a.message)
            .cmp(&(&b.file, b.line, b.col, b.rule, &b.message))
    });
}

/// Runs the full rule catalog over `ws` and applies its allowlist.
///
/// Returns `Err` only for a malformed allowlist — every source file,
/// however broken, still lints (the parser is tolerant by design).
pub fn run(ws: &Workspace) -> Result<LintReport, String> {
    struct Parsed<'a> {
        file: &'a SourceFile,
        raw: Vec<Tree<'a>>,
        stripped: Vec<Tree<'a>>,
    }
    let parsed: Vec<Parsed<'_>> = ws
        .files
        .iter()
        .map(|file| {
            let raw = parse(&file.text);
            let stripped = strip_cfg_test(raw.clone());
            Parsed {
                file,
                raw,
                stripped,
            }
        })
        .collect();

    let mut findings = Vec::new();
    for p in &parsed {
        let f = p.file;
        let name = f.crate_name.as_str();
        if f.path.ends_with("src/lib.rs") {
            findings.extend(rules::check_lint_headers(&f.path, &f.text));
        }
        if !THREAD_MODULES.iter().any(|m| f.path.ends_with(m)) {
            findings.extend(rules::check_thread_containment(&f.path, &p.raw));
        }
        if name != NET_CRATE {
            findings.extend(rules::check_net_containment(&f.path, &p.raw));
        }
        if !f.in_src {
            continue;
        }
        if NO_PANIC_CRATES.contains(&name) {
            findings.extend(rules::check_no_panics(&f.path, &p.stripped));
        }
        if DISPATCH_CRATES.contains(&name) {
            findings.extend(rules::check_dispatch_exhaustive(&f.path, &p.stripped));
        }
        let in_bin = f.path.contains("/bin/");
        if NO_PRINT_CRATES.contains(&name) && !in_bin {
            findings.extend(rules::check_no_adhoc_prints(&f.path, &p.stripped));
        }
        if DETERMINISM_CRATES.contains(&name) {
            findings.extend(rules::check_determinism(&f.path, &p.stripped));
        }
    }

    let cross = |set: &[&str]| -> Vec<(&str, &[Tree<'_>])> {
        parsed
            .iter()
            .filter(|p| p.file.in_src && set.contains(&p.file.crate_name.as_str()))
            .map(|p| (p.file.path.as_str(), p.stripped.as_slice()))
            .collect()
    };
    findings.extend(rules::check_lock_order(&cross(LOCK_ORDER_CRATES)));
    findings.extend(rules::check_message_flow(
        MESSAGE_ENUM,
        &cross(DISPATCH_CRATES),
    ));
    let catalog = rules::design_metric_catalog(&ws.design);
    findings.extend(rules::check_obs_catalog(
        &cross(OBS_CATALOG_CRATES),
        &catalog,
    ));
    let spans = rules::design_span_catalog(&ws.design);
    findings.extend(rules::check_span_catalog(
        &cross(OBS_CATALOG_CRATES),
        &spans,
    ));

    for (path, text) in &ws.scenarios {
        findings.extend(rules::check_scenario_file(path, text));
    }

    if let Some(text) = &ws.allowlist {
        let list = Allowlist::parse(text)?;
        findings = list.apply(findings, ALLOWLIST_FILE);
    }
    sort_findings(&mut findings);
    Ok(LintReport {
        findings,
        files_checked: ws.files.len() + ws.scenarios.len(),
        crates: ws.crates,
    })
}

/// Walks a real checkout rooted at `root` into a [`Workspace`].
pub fn load_workspace(root: &Path) -> Result<Workspace, String> {
    fn rs_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        let mut paths: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        paths.sort();
        for path in paths {
            if path.is_dir() {
                rs_files(&path, out);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    let rel = |path: &Path| -> String {
        let s = path
            .strip_prefix(root)
            .unwrap_or(path)
            .display()
            .to_string();
        s.replace('\\', "/")
    };

    let crates_dir = root.join("crates");
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("no crates/ under {}: {e}", root.display()))?;
    let mut crate_dirs: Vec<_> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut ws = Workspace {
        crates: crate_dirs.len(),
        ..Workspace::default()
    };
    for dir in &crate_dirs {
        let crate_name = dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("")
            .to_string();
        for sub in ["src", "benches", "tests"] {
            let mut files = Vec::new();
            rs_files(&dir.join(sub), &mut files);
            for file in files {
                let Ok(text) = std::fs::read_to_string(&file) else {
                    continue;
                };
                ws.files.push(SourceFile {
                    path: rel(&file),
                    crate_name: crate_name.clone(),
                    in_src: sub == "src",
                    text,
                });
            }
        }
        if crate_name == "doma-scenario" {
            let mut scenario_files: Vec<_> = std::fs::read_dir(dir.join("scenarios"))
                .map(|entries| {
                    entries
                        .flatten()
                        .map(|e| e.path())
                        .filter(|p| p.extension().is_some_and(|e| e == "toml"))
                        .collect()
                })
                .unwrap_or_default();
            scenario_files.sort();
            if scenario_files.is_empty() {
                return Err(format!("no builtin scenarios under {}", dir.display()));
            }
            for file in scenario_files {
                let Ok(text) = std::fs::read_to_string(&file) else {
                    continue;
                };
                ws.scenarios.push((rel(&file), text));
            }
        }
    }
    ws.design = std::fs::read_to_string(root.join("DESIGN.md")).unwrap_or_default();
    ws.allowlist = std::fs::read_to_string(root.join(ALLOWLIST_FILE)).ok();
    Ok(ws)
}

/// Renders the report as the human table (one `file:line:col: [rule]
/// message` row per finding plus a summary line).
pub fn render_table(report: &LintReport) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&format!("{f}\n"));
    }
    out.push_str(&format!(
        "doma-lint: {} crates, {} files checked, {} finding(s)\n",
        report.crates,
        report.files_checked,
        report.findings.len()
    ));
    out
}

fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Renders the report as byte-stable JSON: fixed key order, findings
/// pre-sorted, minimal escaping, trailing newline. Two runs over the
/// same tree produce identical bytes.
pub fn render_json(report: &LintReport) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"version\": 1,\n");
    out.push_str(&format!("  \"crates\": {},\n", report.crates));
    out.push_str(&format!("  \"files_checked\": {},\n", report.files_checked));
    out.push_str(&format!("  \"findings\": {},\n", report.findings.len()));
    out.push_str("  \"items\": [");
    for (i, f) in report.findings.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"col\": {}, \"rule\": \"{}\", \"message\": \"",
            {
                let mut p = String::new();
                json_escape(&f.file, &mut p);
                p
            },
            f.line,
            f.col,
            f.rule
        ));
        json_escape(&f.message, &mut out);
        out.push_str("\"}");
    }
    if report.findings.is_empty() {
        out.push_str("]\n");
    } else {
        out.push_str("\n  ]\n");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, crate_name: &str, in_src: bool, text: &str) -> SourceFile {
        SourceFile {
            path: path.to_string(),
            crate_name: crate_name.to_string(),
            in_src,
            text: text.to_string(),
        }
    }

    #[test]
    fn json_output_is_byte_stable_and_sorted() {
        let ws = Workspace {
            files: vec![file(
                "crates/doma-sim/src/z.rs",
                "doma-sim",
                true,
                "fn f(o: Option<u8>) -> u8 { o.unwrap() }\nuse std::collections::HashMap;\n",
            )],
            ..Workspace::default()
        };
        let r1 = run(&ws).expect("runs");
        let r2 = run(&ws).expect("runs");
        assert_eq!(render_json(&r1), render_json(&r2));
        // Sorted by line: HashMap (line 2) after unwrap (line 1).
        assert_eq!(r1.findings[0].rule, "no-panic");
        assert_eq!(r1.findings[1].rule, "determinism");
        let json = render_json(&r1);
        assert!(json.ends_with("}\n"));
        assert!(json.contains("\"findings\": 2"));
    }

    #[test]
    fn allowlist_suppression_flows_through_run() {
        let ws = Workspace {
            files: vec![file(
                "crates/doma-sim/src/a.rs",
                "doma-sim",
                true,
                "fn f() -> String { std::env::var(\"X\").unwrap_or_default() }\n",
            )],
            allowlist: Some("determinism crates/doma-sim/src/a.rs env::var\n".to_string()),
            ..Workspace::default()
        };
        let report = run(&ws).expect("runs");
        assert!(
            report.findings.is_empty(),
            "suppressed, no stale: {:?}",
            report.findings
        );
    }
}

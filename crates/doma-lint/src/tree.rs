//! Nested token trees and `#[cfg(test)]` masking at the token level.
//!
//! The flat stream from [`crate::lex`] is folded into a tree: every
//! `(…)`, `[…]`, `{…}` becomes a [`Group`] whose children are again
//! trees. Rules walk sibling sequences at each nesting level, which is
//! what lets them tell a `match` arm pattern from an expression, an
//! attribute from code, or a method call from a trait-method definition
//! — distinctions the old character-masking scanner could not make.
//!
//! The builder never fails: a stray closing delimiter becomes a plain
//! leaf and groups still open at end of input close there (tolerant
//! parsing keeps the linter usable on mid-edit code).

use crate::lex::{lex, Delim, TokKind, Token};

/// A token tree: a single token, or a delimited group of trees.
#[derive(Debug, Clone)]
pub enum Tree<'a> {
    /// A non-delimiter token.
    Leaf(Token<'a>),
    /// A delimited `(…)` / `[…]` / `{…}` group.
    Group(Group<'a>),
}

/// A delimited group and its children.
#[derive(Debug, Clone)]
pub struct Group<'a> {
    /// Which delimiter pair encloses the group.
    pub delim: Delim,
    /// The opening delimiter token (the group's span anchor).
    pub open: Token<'a>,
    /// The trees between the delimiters.
    pub children: Vec<Tree<'a>>,
}

impl<'a> Tree<'a> {
    /// The leaf token, if this tree is a leaf.
    pub fn leaf(&self) -> Option<&Token<'a>> {
        match self {
            Tree::Leaf(t) => Some(t),
            Tree::Group(_) => None,
        }
    }

    /// The group, if this tree is a group.
    pub fn group(&self) -> Option<&Group<'a>> {
        match self {
            Tree::Leaf(_) => None,
            Tree::Group(g) => Some(g),
        }
    }

    /// The group, if this tree is a group with delimiter `d`.
    pub fn group_with(&self, d: Delim) -> Option<&Group<'a>> {
        self.group().filter(|g| g.delim == d)
    }

    /// Whether this tree is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.leaf().is_some_and(|t| t.is_ident(word))
    }

    /// Whether this tree is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.leaf().is_some_and(|t| t.is_punct(c))
    }

    /// The span anchor: the leaf token, or the group's opening delimiter.
    pub fn anchor(&self) -> &Token<'a> {
        match self {
            Tree::Leaf(t) => t,
            Tree::Group(g) => &g.open,
        }
    }
}

/// Lexes and folds `src` into a top-level tree sequence.
pub fn parse(src: &str) -> Vec<Tree<'_>> {
    let tokens = lex(src);
    let mut stack: Vec<(Group<'_>, Delim)> = Vec::new();
    let mut top: Vec<Tree<'_>> = Vec::new();
    fn push<'a>(stack: &mut Vec<(Group<'a>, Delim)>, top: &mut Vec<Tree<'a>>, tree: Tree<'a>) {
        match stack.last_mut() {
            Some((g, _)) => g.children.push(tree),
            None => top.push(tree),
        }
    }
    for tok in tokens {
        match tok.kind {
            TokKind::Open(d) => stack.push((
                Group {
                    delim: d,
                    open: tok,
                    children: Vec::new(),
                },
                d,
            )),
            TokKind::Close(d) => {
                if stack.last().is_some_and(|&(_, open)| open == d) {
                    let (group, _) = match stack.pop() {
                        Some(g) => g,
                        None => continue,
                    };
                    push(&mut stack, &mut top, Tree::Group(group));
                } else {
                    // Stray or mismatched close: keep it as a leaf so
                    // spans survive and parsing continues.
                    push(&mut stack, &mut top, Tree::Leaf(tok));
                }
            }
            _ => push(&mut stack, &mut top, Tree::Leaf(tok)),
        }
    }
    // Close any unterminated groups at end of input.
    while let Some((group, _)) = stack.pop() {
        push(&mut stack, &mut top, Tree::Group(group));
    }
    top
}

/// Whether `trees[i..]` starts an exact `#[cfg(test)]` attribute, i.e.
/// `#` `[cfg(test)]`. Returns the number of trees it spans (2).
fn cfg_test_at(trees: &[Tree<'_>], i: usize) -> Option<usize> {
    if !trees.get(i)?.is_punct('#') {
        return None;
    }
    let attr = trees.get(i + 1)?.group_with(Delim::Bracket)?;
    let [first, second] = attr.children.as_slice() else {
        return None;
    };
    if !first.is_ident("cfg") {
        return None;
    }
    let args = second.group_with(Delim::Paren)?;
    let [only] = args.children.as_slice() else {
        return None;
    };
    only.is_ident("test").then_some(2)
}

/// Whether `trees[i..]` starts any attribute `#[…]` (returns its width).
fn attr_at(trees: &[Tree<'_>], i: usize) -> Option<usize> {
    if trees.get(i)?.is_punct('#') && trees.get(i + 1)?.group_with(Delim::Bracket).is_some() {
        Some(2)
    } else {
        None
    }
}

/// Removes every `#[cfg(test)]`-gated item, recursively: the attribute,
/// any further attributes on the same item, and the item itself through
/// its first brace-delimited body or its terminating `;` — whichever
/// comes first. Groups that survive are stripped recursively, so nested
/// test modules inside live code disappear too.
pub fn strip_cfg_test<'a>(trees: Vec<Tree<'a>>) -> Vec<Tree<'a>> {
    let mut out = Vec::with_capacity(trees.len());
    let mut i = 0;
    while i < trees.len() {
        if let Some(w) = cfg_test_at(&trees, i) {
            i += w;
            // Further attributes on the gated item.
            while let Some(w) = attr_at(&trees, i) {
                i += w;
            }
            // Skip the item: through its first `{…}` body, or its `;`.
            while i < trees.len() {
                match &trees[i] {
                    Tree::Group(g) if g.delim == Delim::Brace => {
                        i += 1;
                        break;
                    }
                    Tree::Leaf(t) if t.is_punct(';') => {
                        i += 1;
                        break;
                    }
                    _ => i += 1,
                }
            }
            continue;
        }
        match &trees[i] {
            Tree::Group(g) => out.push(Tree::Group(Group {
                delim: g.delim,
                open: g.open,
                children: strip_cfg_test(g.children.clone()),
            })),
            leaf => out.push(leaf.clone()),
        }
        i += 1;
    }
    out
}

/// Calls `f` on every group's child slice, starting with the top level,
/// recursing into groups (pre-order).
pub fn walk_levels<'a>(trees: &[Tree<'a>], f: &mut impl FnMut(&[Tree<'a>])) {
    f(trees);
    for tree in trees {
        if let Tree::Group(g) = tree {
            walk_levels(&g.children, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_nest_and_tolerate_imbalance() {
        let trees = parse("fn f(a: u8) { g([1, 2]); }");
        assert_eq!(trees.len(), 4, "fn, f, (…), {{…}}");
        let body = trees[3].group_with(Delim::Brace).expect("body");
        assert!(body.children[1].group_with(Delim::Paren).is_some());

        // Stray close and unterminated open both survive.
        let trees = parse(") fn f( {");
        assert!(trees[0].leaf().is_some());
        assert!(trees.iter().any(|t| t.group().is_some()));
    }

    #[test]
    fn cfg_test_items_are_stripped_recursively() {
        let src = "
fn live() { x.unwrap(); }
#[cfg(test)]
mod tests { fn t() { y.unwrap(); } }
#[cfg(test)]
use std::collections::HashMap;
mod keep {
    #[cfg(test)]
    #[allow(dead_code)]
    fn gone() {}
    fn stays() {}
}
";
        let stripped = strip_cfg_test(parse(src));
        let mut idents = Vec::new();
        walk_levels(&stripped, &mut |level| {
            for t in level {
                if let Some(l) = t.leaf() {
                    if l.kind == crate::lex::TokKind::Ident {
                        idents.push(l.text.to_string());
                    }
                }
            }
        });
        assert!(idents.iter().any(|i| i == "live"));
        assert!(idents.iter().any(|i| i == "stays"));
        assert!(!idents.iter().any(|i| i == "tests"));
        assert!(!idents.iter().any(|i| i == "HashMap"));
        assert!(!idents.iter().any(|i| i == "gone"));
        // Exactly one unwrap survives (the live one).
        assert_eq!(idents.iter().filter(|i| *i == "unwrap").count(), 1);
    }

    #[test]
    fn cfg_not_test_attributes_are_kept() {
        let src = "#[cfg(feature = \"x\")] fn f() { a.unwrap(); }";
        let stripped = strip_cfg_test(parse(src));
        let mut found = false;
        walk_levels(&stripped, &mut |level| {
            for t in level {
                if t.is_ident("unwrap") {
                    found = true;
                }
            }
        });
        assert!(found, "non-test cfg survives");
    }
}

//! A hand-written, zero-dependency Rust lexer with exact spans.
//!
//! Produces a flat token stream in which comments and whitespace are
//! *skipped* (so rules never match text inside them) but every token
//! remembers its byte offset, 1-indexed line and column, and its exact
//! source slice — findings point at real `file:line:col` positions and
//! the span invariant `&src[tok.start..tok.start + tok.text.len()] ==
//! tok.text` holds for every token (pinned by a property test).
//!
//! The lexer understands the Rust surface the lint wall needs to get
//! right at the *token* level rather than by character masking:
//!
//! * line comments, nested block comments, doc comments (all skipped);
//! * string literals with escapes, byte strings, raw strings
//!   `r"…"`/`r#"…"#` (any hash depth), raw byte strings `br#"…"#`;
//! * char literals vs lifetimes (`'a'` vs `&'a str`);
//! * raw identifiers `r#match`;
//! * numeric literals including floats and exponents (without
//!   swallowing `..` range punctuation);
//! * single-character punctuation and the three delimiter pairs.
//!
//! Multi-character operators (`::`, `=>`, `..`) are left as adjacent
//! single-character [`TokKind::Punct`] tokens; consumers that care test
//! adjacency via byte offsets (see [`Token::glued_to`]).

/// The three bracket delimiters that build token trees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    /// `( … )`
    Paren,
    /// `[ … ]`
    Bracket,
    /// `{ … }`
    Brace,
}

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers `r#foo`).
    Ident,
    /// A lifetime such as `'a` (quote included in the text).
    Lifetime,
    /// Any string-like literal: `"…"`, `b"…"`, `r"…"`, `r#"…"#`, `br"…"`.
    Str,
    /// A char or byte literal: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// A numeric literal (integer or float, any base).
    Num,
    /// A single punctuation character that is not a delimiter.
    Punct,
    /// An opening delimiter.
    Open(Delim),
    /// A closing delimiter.
    Close(Delim),
}

/// One lexed token with its exact span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token<'a> {
    /// What the token is.
    pub kind: TokKind,
    /// The exact source slice.
    pub text: &'a str,
    /// Byte offset of the first character.
    pub start: usize,
    /// 1-indexed source line.
    pub line: u32,
    /// 1-indexed column (in characters, not bytes).
    pub col: u32,
}

impl<'a> Token<'a> {
    /// Whether `next` begins at the byte immediately after this token —
    /// i.e. the two form one glued operator like `::`, `=>` or `..`.
    pub fn glued_to(&self, next: &Token<'a>) -> bool {
        self.start + self.text.len() == next.start
    }

    /// Whether this token is the identifier `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokKind::Ident && self.text == word
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.starts_with(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

struct Cursor<'a> {
    src: &'a str,
    chars: Vec<(usize, char)>,
    /// Index into `chars`.
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            src,
            chars: src.char_indices().collect(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).map(|&(_, c)| c)
    }

    fn offset(&self) -> usize {
        self.chars
            .get(self.pos)
            .map(|&(o, _)| o)
            .unwrap_or(self.src.len())
    }

    fn bump(&mut self) -> Option<char> {
        let &(_, c) = self.chars.get(self.pos)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }
}

/// Lexes `src` into a flat token stream; comments and whitespace are
/// skipped. The lexer never fails: unterminated literals run to end of
/// input and any unrecognized character becomes a [`TokKind::Punct`].
pub fn lex(src: &str) -> Vec<Token<'_>> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while let Some(c) = cur.peek(0) {
        // Whitespace.
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        // Comments (line, and nested block).
        if c == '/' && cur.peek(1) == Some('/') {
            while let Some(c) = cur.peek(0) {
                if c == '\n' {
                    break;
                }
                cur.bump();
            }
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            let mut depth = 0usize;
            while cur.peek(0).is_some() {
                if cur.peek(0) == Some('/') && cur.peek(1) == Some('*') {
                    depth += 1;
                    cur.bump_n(2);
                } else if cur.peek(0) == Some('*') && cur.peek(1) == Some('/') {
                    depth -= 1;
                    cur.bump_n(2);
                    if depth == 0 {
                        break;
                    }
                } else {
                    cur.bump();
                }
            }
            continue;
        }
        let (start, line, col) = (cur.offset(), cur.line, cur.col);
        fn emit<'a>(
            src: &'a str,
            (start, line, col): (usize, u32, u32),
            end: usize,
            kind: TokKind,
            out: &mut Vec<Token<'a>>,
        ) {
            out.push(Token {
                kind,
                text: &src[start..end],
                start,
                line,
                col,
            });
        }
        // Raw strings and raw identifiers: r"…", r#"…"#, r#ident; byte
        // variants b"…", br#"…"#, b'…'.
        let raw_hashes = |cur: &Cursor<'_>, from: usize| -> Option<usize> {
            let mut n = 0;
            while cur.peek(from + n) == Some('#') {
                n += 1;
            }
            (cur.peek(from + n) == Some('"')).then_some(n)
        };
        if c == 'r' || c == 'b' {
            let (is_b, body) = if c == 'b' && cur.peek(1) == Some('r') {
                (true, 2)
            } else {
                (c == 'b', 1)
            };
            let rawish = c == 'r' || (is_b && body == 2);
            if rawish && raw_hashes(&cur, body).is_some() {
                let hashes = raw_hashes(&cur, body).unwrap_or(0);
                cur.bump_n(body + hashes + 1); // prefix + hashes + opening quote
                loop {
                    match cur.peek(0) {
                        None => break,
                        Some('"') => {
                            let mut all = true;
                            for k in 0..hashes {
                                if cur.peek(1 + k) != Some('#') {
                                    all = false;
                                    break;
                                }
                            }
                            if all {
                                cur.bump_n(1 + hashes);
                                break;
                            }
                            cur.bump();
                        }
                        Some(_) => {
                            cur.bump();
                        }
                    }
                }
                emit(
                    src,
                    (start, line, col),
                    cur.offset(),
                    TokKind::Str,
                    &mut out,
                );
                continue;
            }
            if c == 'r' && cur.peek(1) == Some('#') && cur.peek(2).is_some_and(is_ident_start) {
                cur.bump_n(2);
                while cur.peek(0).is_some_and(is_ident_continue) {
                    cur.bump();
                }
                emit(
                    src,
                    (start, line, col),
                    cur.offset(),
                    TokKind::Ident,
                    &mut out,
                );
                continue;
            }
            if is_b && body == 1 && cur.peek(1) == Some('"') {
                cur.bump(); // the b prefix; fall through to string below
            } else if is_b && body == 1 && cur.peek(1) == Some('\'') {
                // Byte char literal b'x'.
                cur.bump_n(2);
                if cur.peek(0) == Some('\\') {
                    cur.bump_n(2);
                }
                while let Some(c) = cur.peek(0) {
                    cur.bump();
                    if c == '\'' {
                        break;
                    }
                }
                emit(
                    src,
                    (start, line, col),
                    cur.offset(),
                    TokKind::Char,
                    &mut out,
                );
                continue;
            }
        }
        let c = cur.peek(0).unwrap_or(' ');
        // String literal.
        if c == '"' {
            cur.bump();
            while let Some(c) = cur.peek(0) {
                if c == '\\' {
                    cur.bump_n(2);
                } else if c == '"' {
                    cur.bump();
                    break;
                } else {
                    cur.bump();
                }
            }
            emit(
                src,
                (start, line, col),
                cur.offset(),
                TokKind::Str,
                &mut out,
            );
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let is_char = match (cur.peek(1), cur.peek(2)) {
                (Some('\\'), _) => true,
                (Some(n), Some('\'')) if n != '\'' => true,
                (Some(n), _) if !is_ident_start(n) && n != '\'' => true,
                _ => false,
            };
            if is_char {
                cur.bump();
                if cur.peek(0) == Some('\\') {
                    cur.bump_n(2);
                }
                while let Some(c) = cur.peek(0) {
                    cur.bump();
                    if c == '\'' {
                        break;
                    }
                }
                emit(
                    src,
                    (start, line, col),
                    cur.offset(),
                    TokKind::Char,
                    &mut out,
                );
            } else {
                cur.bump();
                while cur.peek(0).is_some_and(is_ident_continue) {
                    cur.bump();
                }
                emit(
                    src,
                    (start, line, col),
                    cur.offset(),
                    TokKind::Lifetime,
                    &mut out,
                );
            }
            continue;
        }
        // Identifier / keyword.
        if is_ident_start(c) {
            while cur.peek(0).is_some_and(is_ident_continue) {
                cur.bump();
            }
            emit(
                src,
                (start, line, col),
                cur.offset(),
                TokKind::Ident,
                &mut out,
            );
            continue;
        }
        // Number: digits (any base via letters), `_` separators, one
        // fractional `.` when followed by a digit (so `0..n` stays two
        // range dots), exponents with an optional sign.
        if c.is_ascii_digit() {
            cur.bump();
            loop {
                match cur.peek(0) {
                    Some(d) if d.is_ascii_alphanumeric() || d == '_' => {
                        let exp = (d == 'e' || d == 'E')
                            && matches!(cur.peek(1), Some('+') | Some('-'))
                            && cur.peek(2).is_some_and(|c| c.is_ascii_digit());
                        cur.bump();
                        if exp {
                            cur.bump(); // the sign
                        }
                    }
                    Some('.')
                        if cur.peek(1).is_some_and(|c| c.is_ascii_digit())
                            && !src[start..cur.offset()].contains('.') =>
                    {
                        cur.bump();
                    }
                    _ => break,
                }
            }
            emit(
                src,
                (start, line, col),
                cur.offset(),
                TokKind::Num,
                &mut out,
            );
            continue;
        }
        // Delimiters and punctuation.
        let kind = match c {
            '(' => TokKind::Open(Delim::Paren),
            '[' => TokKind::Open(Delim::Bracket),
            '{' => TokKind::Open(Delim::Brace),
            ')' => TokKind::Close(Delim::Paren),
            ']' => TokKind::Close(Delim::Bracket),
            '}' => TokKind::Close(Delim::Brace),
            _ => TokKind::Punct,
        };
        cur.bump();
        emit(src, (start, line, col), cur.offset(), kind, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_and_strings_disappear_as_tokens() {
        let toks = kinds(
            "let a = \"panic! .unwrap()\"; // .unwrap()\n/* nested /* block */ .expect( */ real",
        );
        assert_eq!(
            toks,
            vec![
                (TokKind::Ident, "let"),
                (TokKind::Ident, "a"),
                (TokKind::Punct, "="),
                (TokKind::Str, "\"panic! .unwrap()\""),
                (TokKind::Punct, ";"),
                (TokKind::Ident, "real"),
            ]
        );
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let toks = kinds("r#\"raw \" quote\"# r\"x\" br#\"y\"# b\"z\" r#match");
        assert_eq!(toks[0], (TokKind::Str, "r#\"raw \" quote\"#"));
        assert_eq!(toks[1], (TokKind::Str, "r\"x\""));
        assert_eq!(toks[2], (TokKind::Str, "br#\"y\"#"));
        assert_eq!(toks[3], (TokKind::Str, "b\"z\""));
        assert_eq!(toks[4], (TokKind::Ident, "r#match"));
    }

    #[test]
    fn chars_vs_lifetimes() {
        let toks = kinds("'\\'' 'a' &'static str ' ' b'q'");
        assert_eq!(toks[0], (TokKind::Char, "'\\''"));
        assert_eq!(toks[1], (TokKind::Char, "'a'"));
        assert_eq!(toks[2], (TokKind::Punct, "&"));
        assert_eq!(toks[3], (TokKind::Lifetime, "'static"));
        assert_eq!(toks[4], (TokKind::Ident, "str"));
        assert_eq!(toks[5], (TokKind::Char, "' '"));
        assert_eq!(toks[6], (TokKind::Char, "b'q'"));
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let toks = kinds("0..n 1.5e-3 0xff_u8 2.");
        assert_eq!(toks[0], (TokKind::Num, "0"));
        assert_eq!(toks[1], (TokKind::Punct, "."));
        assert_eq!(toks[2], (TokKind::Punct, "."));
        assert_eq!(toks[3], (TokKind::Ident, "n"));
        assert_eq!(toks[4], (TokKind::Num, "1.5e-3"));
        assert_eq!(toks[5], (TokKind::Num, "0xff_u8"));
        assert_eq!(toks[6], (TokKind::Num, "2"));
        assert_eq!(toks[7], (TokKind::Punct, "."));
    }

    #[test]
    fn spans_are_exact_and_lines_advance() {
        let src = "fn f() {\n    x.unwrap();\n}\n";
        for t in lex(src) {
            assert_eq!(&src[t.start..t.start + t.text.len()], t.text);
        }
        let unwrap = lex(src).into_iter().find(|t| t.is_ident("unwrap"));
        let unwrap = unwrap.expect("unwrap token");
        assert_eq!((unwrap.line, unwrap.col), (2, 7));
    }

    #[test]
    fn glued_detects_multichar_operators() {
        let toks = lex("a::b => c : : d");
        assert!(toks[1].glued_to(&toks[2]), ":: is glued");
        assert!(toks[4].glued_to(&toks[5]), "=> is glued");
        assert!(!toks[7].glued_to(&toks[8]), "spaced colons are not");
    }
}

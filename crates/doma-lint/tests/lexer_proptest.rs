//! Property tests for the lint lexer and the cfg(test) mask (satellites
//! of the token-engine PR):
//!
//! 1. **Span round-trip** — for random token soup (identifiers,
//!    numbers, strings, raw strings, char/lifetime quotes, comments,
//!    balanced delimiters, glued operators, random separators), every
//!    lexed token's `text` is exactly `src[start..start + len]`, tokens
//!    never overlap, and each token's `line:col` matches an independent
//!    recount of the prefix. The lexer never panics on any soup.
//! 2. **Masked regions are invisible** — a randomly generated
//!    `#[cfg(test)]` module stuffed with rule violations (unwraps,
//!    panics, prints, HashMaps, wildcard dispatch arms, re-entrant
//!    locks) produces zero findings when run through the full engine.
//!
//! Failures print a `DOMA_PROP_SEED=…` replay line via the testkit
//! harness.

use doma_lint::engine::{SourceFile, Workspace};
use doma_lint::lex::lex;
use doma_testkit::property::{self as prop, Gen};
use doma_testkit::TestRng;

/// Source-level pieces the soup is assembled from. Each is a valid
/// token (or comment) on its own; adjacency without separators is
/// allowed and may merge or re-split tokens — the span invariant must
/// hold regardless.
const PIECES: &[&str] = &[
    "ident",
    "x9_",
    "_",
    "r#match",
    "0",
    "12_345",
    "0.5",
    "1e-3",
    "1.5e+7",
    "0xfe",
    "0..n",
    "\"str \\\" escaped\"",
    "\"\"",
    "b\"bytes\"",
    "r\"raw\"",
    "r#\"raw \" inner\"#",
    "br#\"raw bytes\"#",
    "'a'",
    "'\\n'",
    "b'x'",
    "'static",
    "'_",
    "// line comment",
    "/* block /* nested */ comment */",
    "::",
    "=>",
    "..",
    "->",
    "==",
    "&&",
    "#",
    "!",
    ";",
    ",",
    ".",
    "=",
    "<",
    ">",
    "&",
    "|",
    "@",
    "?",
];

const SEPARATORS: &[&str] = &[" ", "\n", "  ", "\t", "\n\n", " "];

/// A random token soup with balanced delimiters.
struct SoupGen;

impl Gen for SoupGen {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut src = String::new();
        let mut stack: Vec<char> = Vec::new();
        let n = prop::range(1usize..80).generate(rng);
        for _ in 0..n {
            match prop::range(0usize..10).generate(rng) {
                // Open a delimiter.
                0 | 1 => {
                    let (open, close) =
                        [('(', ')'), ('[', ']'), ('{', '}')][prop::range(0usize..3).generate(rng)];
                    src.push(open);
                    stack.push(close);
                }
                // Close the innermost open delimiter.
                2 if !stack.is_empty() => {
                    src.push(stack.pop().unwrap_or(')'));
                }
                _ => {
                    src.push_str(PIECES[prop::range(0usize..PIECES.len()).generate(rng)]);
                }
            }
            src.push_str(SEPARATORS[prop::range(0usize..SEPARATORS.len()).generate(rng)]);
        }
        while let Some(close) = stack.pop() {
            src.push(close);
        }
        src.push('\n');
        src
    }
}

doma_testkit::property! {
    #[cases(192)]
    /// Every token's span is exact, tokens are ordered and disjoint,
    /// and line/col agree with an independent recount.
    fn lexed_spans_round_trip(src in SoupGen) {
        let tokens = lex(&src);
        let mut prev_end = 0usize;
        for t in &tokens {
            let end = t.start + t.text.len();
            assert!(
                t.start >= prev_end && end <= src.len(),
                "overlap or overrun at {}:{} in {src:?}",
                t.line,
                t.col
            );
            assert_eq!(&src[t.start..end], t.text, "span drift in {src:?}");
            // Recount line/col from the prefix.
            let prefix = &src[..t.start];
            let line = 1 + prefix.matches('\n').count() as u32;
            let col = 1 + prefix
                .rsplit('\n')
                .next()
                .unwrap_or("")
                .chars()
                .count() as u32;
            assert_eq!((t.line, t.col), (line, col), "position drift in {src:?}");
            prev_end = end;
        }
    }
}

/// Violation statements that every masked rule would flag in live code.
/// `std::thread` is absent by design: thread-containment audits tests
/// too (test code must not spawn threads either).
const VIOLATIONS: &[&str] = &[
    "let a = opt.unwrap();",
    "let b = opt.expect(\"gone\");",
    "panic!(\"boom\");",
    "println!(\"debug\");",
    "eprint!(\"debug\");",
    "let m = std::collections::HashMap::new();",
    "let t = std::time::Instant::now();",
    "let v = std::env::var(\"K\");",
    "let c = x.partial_cmp(&y);",
    "match msg { _ => {} }",
    "let g1 = self.q.lock(); let g2 = self.q.lock();",
];

/// A `#[cfg(test)]` module (sometimes nested inside a live module)
/// stuffed with violations.
struct MaskedGen;

impl Gen for MaskedGen {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let count = prop::range(1usize..6).generate(rng);
        let body: String = (0..count)
            .map(|_| VIOLATIONS[prop::range(0usize..VIOLATIONS.len()).generate(rng)])
            .collect::<Vec<_>>()
            .join("\n        ");
        let module = format!(
            "#[cfg(test)]\nmod tests {{\n    fn t(msg: DomMsg) {{\n        {body}\n    }}\n}}\n"
        );
        if prop::bools().generate(rng) {
            format!("pub fn live() -> u8 {{ 7 }}\n{module}")
        } else {
            format!("mod outer {{\n{module}}}\npub fn live() -> u8 {{ 7 }}\n")
        }
    }
}

doma_testkit::property! {
    #[cases(96)]
    /// `#[cfg(test)]`-gated violations are invisible to the whole rule
    /// catalog — the mask works at any nesting depth.
    fn masked_test_regions_never_produce_findings(src in MaskedGen) {
        let ws = Workspace {
            files: vec![SourceFile {
                path: "crates/doma-sim/src/gen.rs".to_string(),
                crate_name: "doma-sim".to_string(),
                in_src: true,
                text: src.clone(),
            }],
            ..Workspace::default()
        };
        let report = doma_lint::run(&ws).expect("lint runs");
        assert!(
            report.findings.is_empty(),
            "masked violations leaked: {:?}\n---\n{src}",
            report.findings
        );
    }
}

//! The mutation self-test wall: every rule must prove itself by
//! catching a seeded violation at the exact `(file, line, rule)` —
//! the same differential discipline as the PR 2 dropped-Invalidate
//! mutation test, applied to the linter itself. A rule that cannot
//! catch its own fixture is a hole in the wall, not a lint.
//!
//! Fixtures are synthetic in-memory workspaces fed straight to
//! [`doma_lint::run`]; nothing touches the disk, and violation snippets
//! live in string literals the token-level rules cannot see when this
//! file itself is linted.

use doma_lint::engine::{SourceFile, Workspace};
use doma_lint::{run, Finding};

fn sf(path: &str, text: &str) -> SourceFile {
    let crate_name = path
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("")
        .to_string();
    SourceFile {
        path: path.to_string(),
        crate_name,
        in_src: path.contains("/src/"),
        text: text.to_string(),
    }
}

fn ws(files: Vec<SourceFile>) -> Workspace {
    Workspace {
        files,
        ..Workspace::default()
    }
}

/// Asserts the report contains a finding with exactly this
/// `(file, line, rule)` triple.
fn assert_finding(findings: &[Finding], file: &str, line: usize, rule: &str) {
    assert!(
        findings
            .iter()
            .any(|f| f.file == file && f.line == line && f.rule == rule),
        "expected ({file}, {line}, {rule}) in {findings:?}"
    );
}

fn assert_clean(findings: &[Finding]) {
    assert!(findings.is_empty(), "expected clean, got {findings:?}");
}

// ---------------------------------------------------------------------------
// Legacy rules on the token engine
// ---------------------------------------------------------------------------

#[test]
fn no_panic_catches_unwrap_expect_and_panic() {
    let src = "fn f(o: Option<u8>) -> u8 {\n\
               \x20   let x = o.unwrap();\n\
               \x20   let y = o.expect(\"gone\");\n\
               \x20   panic!(\"boom\");\n\
               }\n";
    let report = run(&ws(vec![sf("crates/doma-sim/src/a.rs", src)])).unwrap();
    assert_finding(&report.findings, "crates/doma-sim/src/a.rs", 2, "no-panic");
    assert_finding(&report.findings, "crates/doma-sim/src/a.rs", 3, "no-panic");
    assert_finding(&report.findings, "crates/doma-sim/src/a.rs", 4, "no-panic");
    assert_eq!(report.findings.len(), 3);
}

#[test]
fn no_panic_ignores_tests_strings_comments_and_lookalikes() {
    let src = "fn f(o: Option<u8>) -> u8 {\n\
               \x20   // o.unwrap() in a comment\n\
               \x20   let s = \"o.unwrap() in a string\";\n\
               \x20   let _ = s;\n\
               \x20   o.unwrap_or(0)\n\
               }\n\
               #[cfg(test)]\n\
               mod tests {\n\
               \x20   fn t(o: Option<u8>) { o.unwrap(); panic!(); }\n\
               }\n";
    let report = run(&ws(vec![sf("crates/doma-sim/src/a.rs", src)])).unwrap();
    assert_clean(&report.findings);
}

#[test]
fn exhaustive_dispatch_catches_wildcard_arms() {
    let src = "fn handle(msg: DomMsg) {\n\
               \x20   match msg {\n\
               \x20       DomMsg::Invalidate { .. } => {}\n\
               \x20       _ => {}\n\
               \x20   }\n\
               \x20   match other { _ => {} }\n\
               }\n";
    let report = run(&ws(vec![sf("crates/doma-protocol/src/a.rs", src)])).unwrap();
    assert_finding(
        &report.findings,
        "crates/doma-protocol/src/a.rs",
        4,
        "exhaustive-dispatch",
    );
    // `match other` may use wildcards; `_` field binds inside patterns too.
    assert_eq!(
        report
            .findings
            .iter()
            .filter(|f| f.rule == "exhaustive-dispatch")
            .count(),
        1
    );
}

#[test]
fn no_adhoc_print_catches_println_in_library_code() {
    let src = "fn f() {\n\
               \x20   println!(\"dbg\");\n\
               }\n";
    let report = run(&ws(vec![sf("crates/doma-obs/src/a.rs", src)])).unwrap();
    assert_finding(
        &report.findings,
        "crates/doma-obs/src/a.rs",
        2,
        "no-adhoc-print",
    );
    // The same text under src/bin is exempt (CLI front-ends print).
    let report = run(&ws(vec![sf("crates/doma-obs/src/bin/a.rs", src)])).unwrap();
    assert_clean(&report.findings);
}

#[test]
fn thread_containment_catches_spawn_outside_fanout_modules() {
    let src = "fn f() {\n\
               \x20   std::thread::spawn(|| {});\n\
               \x20   let n = std::thread::available_parallelism();\n\
               }\n";
    let report = run(&ws(vec![sf("crates/doma-core/src/a.rs", src)])).unwrap();
    assert_finding(
        &report.findings,
        "crates/doma-core/src/a.rs",
        2,
        "thread-containment",
    );
    assert_eq!(report.findings.len(), 1, "available_parallelism is allowed");
    // The sanctioned fan-out module is exempt.
    let report = run(&ws(vec![sf("crates/doma-sim/src/shard.rs", src)])).unwrap();
    assert_clean(&report.findings);
}

#[test]
fn net_containment_confines_sockets_to_doma_net() {
    let src = "use std::net::TcpListener;\n\
               fn f() {\n\
               \x20   let s = std::os::unix::net::UnixStream::connect(\"p\");\n\
               \x20   let _ = s;\n\
               }\n";
    let report = run(&ws(vec![sf("crates/doma-protocol/src/a.rs", src)])).unwrap();
    // Line 1 trips twice (the `std::net` path and the `TcpListener`
    // type); line 3 likewise. The pinned triples are what matter.
    assert_finding(
        &report.findings,
        "crates/doma-protocol/src/a.rs",
        1,
        "net-containment",
    );
    assert_finding(
        &report.findings,
        "crates/doma-protocol/src/a.rs",
        3,
        "net-containment",
    );
    assert!(report.findings.iter().all(|f| f.rule == "net-containment"));
    // Tests are NOT exempt: a socket in a test still escapes the sim.
    let test_src = "#[cfg(test)]\n\
                    mod tests {\n\
                    \x20   fn t() { let _ = std::net::UdpSocket::bind(\"x\"); }\n\
                    }\n";
    let report = run(&ws(vec![sf("crates/doma-core/src/b.rs", test_src)])).unwrap();
    assert_finding(
        &report.findings,
        "crates/doma-core/src/b.rs",
        3,
        "net-containment",
    );
    // The sanctioned crate is exempt, its tests included.
    let report = run(&ws(vec![
        sf("crates/doma-net/src/runtime.rs", src),
        sf("crates/doma-net/tests/t.rs", test_src),
    ]))
    .unwrap();
    assert_clean(&report.findings);
    // `std::os::unix::fs` and a local ident `net` stay clean.
    let benign = "fn g() {\n\
                  \x20   use std::os::unix::fs::PermissionsExt;\n\
                  \x20   let net = 3;\n\
                  \x20   let _ = (net, std::net::IpAddr::V4);\n\
                  }\n";
    let report = run(&ws(vec![sf("crates/doma-core/src/c.rs", benign)])).unwrap();
    // Only the std::net path on line 4 trips — the rest is benign.
    assert_eq!(report.findings.len(), 1);
    assert_finding(
        &report.findings,
        "crates/doma-core/src/c.rs",
        4,
        "net-containment",
    );
}

#[test]
fn lint_headers_catch_missing_pragmas() {
    let report = run(&ws(vec![sf(
        "crates/doma-core/src/lib.rs",
        "//! Docs.\npub fn f() {}\n",
    )]))
    .unwrap();
    assert_finding(
        &report.findings,
        "crates/doma-core/src/lib.rs",
        1,
        "lint-headers",
    );
    assert_eq!(report.findings.len(), 2, "both pragmas missing");
}

#[test]
fn scenario_digest_catches_missing_and_malformed_pins() {
    let mut w = ws(vec![]);
    w.scenarios.push((
        "crates/doma-scenario/scenarios/x.toml".to_string(),
        "[scenario]\nname = \"x\"\n".to_string(),
    ));
    let report = run(&w).unwrap();
    assert_finding(
        &report.findings,
        "crates/doma-scenario/scenarios/x.toml",
        1,
        "scenario-digest",
    );

    let mut w = ws(vec![]);
    w.scenarios.push((
        "crates/doma-scenario/scenarios/y.toml".to_string(),
        "[scenario]\nname = \"y\"\n[golden]\ndigest = \"0x123\"\n".to_string(),
    ));
    let report = run(&w).unwrap();
    assert_finding(
        &report.findings,
        "crates/doma-scenario/scenarios/y.toml",
        4,
        "scenario-digest",
    );
}

// ---------------------------------------------------------------------------
// determinism
// ---------------------------------------------------------------------------

#[test]
fn determinism_catches_all_four_hazard_classes() {
    let src = "use std::collections::HashMap;\n\
               fn f() {\n\
               \x20   let t = std::time::Instant::now();\n\
               \x20   let v = std::env::var(\"DOMA_X\");\n\
               \x20   let c = 1.0f64.partial_cmp(&2.0);\n\
               }\n";
    let report = run(&ws(vec![sf("crates/doma-sim/src/a.rs", src)])).unwrap();
    let f = "crates/doma-sim/src/a.rs";
    assert_finding(&report.findings, f, 1, "determinism"); // HashMap
    assert_finding(&report.findings, f, 3, "determinism"); // Instant
    assert_finding(&report.findings, f, 4, "determinism"); // env::var
    assert_finding(&report.findings, f, 5, "determinism"); // partial_cmp
    assert_eq!(report.findings.len(), 4);
}

#[test]
fn determinism_spares_trait_impls_and_nondeterministic_crates() {
    // Defining `partial_cmp` (a trait impl) is not calling it.
    let impl_src = "impl PartialOrd for K {\n\
                    \x20   fn partial_cmp(&self, o: &K) -> Option<Ordering> { None }\n\
                    }\n";
    let report = run(&ws(vec![sf("crates/doma-sim/src/k.rs", impl_src)])).unwrap();
    assert_clean(&report.findings);
    // The analysis crate may use wall clocks (it times real runs).
    let src = "fn f() { let t = std::time::Instant::now(); }\n";
    let report = run(&ws(vec![sf("crates/doma-analysis/src/t.rs", src)])).unwrap();
    assert_clean(&report.findings);
}

// ---------------------------------------------------------------------------
// lock-order
// ---------------------------------------------------------------------------

#[test]
fn lock_order_catches_reentrant_acquisition() {
    let src = "impl Shard {\n\
               \x20   fn tick(&self) {\n\
               \x20       let a = self.queue.lock();\n\
               \x20       let b = self.queue.lock();\n\
               \x20   }\n\
               }\n";
    let report = run(&ws(vec![sf("crates/doma-sim/src/net.rs", src)])).unwrap();
    assert_finding(
        &report.findings,
        "crates/doma-sim/src/net.rs",
        4,
        "lock-order",
    );
}

#[test]
fn lock_order_catches_acquisition_cycles_across_functions() {
    let src = "impl Shard {\n\
               \x20   fn ab(&self) {\n\
               \x20       let a = self.m1.lock();\n\
               \x20       let b = self.m2.lock();\n\
               \x20   }\n\
               \x20   fn ba(&self) {\n\
               \x20       let b = self.m2.lock();\n\
               \x20       let a = self.m1.lock();\n\
               \x20   }\n\
               }\n";
    let report = run(&ws(vec![sf("crates/doma-sim/src/net.rs", src)])).unwrap();
    let cyc: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "lock-order")
        .collect();
    assert_eq!(cyc.len(), 1, "{report:?}");
    assert_eq!(cyc[0].line, 4, "first edge site anchors the cycle");
    assert!(cyc[0].message.contains("cycle"));
}

#[test]
fn lock_order_respects_drop_and_scope_ends() {
    let src = "impl Shard {\n\
               \x20   fn ok(&self) {\n\
               \x20       let a = self.m1.lock();\n\
               \x20       drop(a);\n\
               \x20       let b = self.m2.lock();\n\
               \x20   }\n\
               \x20   fn scoped(&self) {\n\
               \x20       { let b = self.m2.lock(); }\n\
               \x20       let a = self.m1.lock();\n\
               \x20   }\n\
               }\n";
    // Neither function holds two guards at once, so no edges and no
    // cycle — even though the orders would conflict if held.
    let report = run(&ws(vec![sf("crates/doma-sim/src/net.rs", src)])).unwrap();
    assert_clean(&report.findings);
}

// ---------------------------------------------------------------------------
// message-flow
// ---------------------------------------------------------------------------

#[test]
fn message_flow_catches_unsendable_and_dead_variants() {
    let def = "pub enum DomMsg {\n\
               \x20   Used { x: u8 },\n\
               \x20   NeverBuilt,\n\
               \x20   NeverMatched(u8),\n\
               }\n";
    let uses = "fn f(msg: DomMsg) -> DomMsg {\n\
                \x20   match msg {\n\
                \x20       DomMsg::Used { .. } => {}\n\
                \x20       DomMsg::NeverBuilt => {}\n\
                \x20       DomMsg::NeverMatched(_) => {}\n\
                \x20   }\n\
                \x20   let m = DomMsg::Used { x: 1 };\n\
                \x20   if matches!(m, DomMsg::Used { .. }) {\n\
                \x20       return DomMsg::NeverMatched(2);\n\
                \x20   }\n\
                \x20   m\n\
                }\n";
    // Every variant is matched by the dispatch, and Used/NeverMatched
    // are constructed — NeverBuilt's missing construction is the one
    // seeded violation (the dead-variant case is the next test).
    let report = run(&ws(vec![
        sf("crates/doma-protocol/src/msg.rs", def),
        sf("crates/doma-protocol/src/node.rs", uses),
    ]))
    .unwrap();
    let mf: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "message-flow")
        .collect();
    assert_eq!(mf.len(), 1, "{report:?}");
    assert_eq!(
        (mf[0].file.as_str(), mf[0].line),
        ("crates/doma-protocol/src/msg.rs", 3),
        "NeverBuilt is never constructed"
    );
    assert!(mf[0].message.contains("never constructed"));
}

#[test]
fn message_flow_catches_dead_variants() {
    let def = "pub enum DomMsg {\n\
               \x20   Used,\n\
               \x20   Dead,\n\
               }\n";
    let uses = "fn f(msg: DomMsg) -> bool {\n\
                \x20   let _ = DomMsg::Dead;\n\
                \x20   let _ = DomMsg::Used;\n\
                \x20   matches!(msg, DomMsg::Used)\n\
                }\n";
    let report = run(&ws(vec![
        sf("crates/doma-protocol/src/msg.rs", def),
        sf("crates/doma-protocol/src/node.rs", uses),
    ]))
    .unwrap();
    let mf: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "message-flow")
        .collect();
    assert_eq!(mf.len(), 1, "{report:?}");
    assert_eq!(
        (mf[0].file.as_str(), mf[0].line),
        ("crates/doma-protocol/src/msg.rs", 3),
        "Dead is never dispatched"
    );
    assert!(mf[0].message.contains("never matched"));
}

// ---------------------------------------------------------------------------
// obs-catalog
// ---------------------------------------------------------------------------

const DESIGN_STUB: &str = "## 7. Other\n\
                           `not.a_metric_section`\n\
                           ## 8. Observability\n\
                           | `proto.good` | a metric |\n\
                           ## 9. After\n\
                           ## 13. Causal tracing\n\
                           | `proto.span_ok` | a span |\n\
                           ## 14. After\n";

#[test]
fn obs_catalog_catches_uncataloged_metrics_and_unsorted_labels() {
    let src = "fn f(reg: &Registry) {\n\
               \x20   reg.counter(\"proto\", \"good\", &[]).add2(1);\n\
               \x20   reg.counter(\"proto\", \"bogus\", &[]).add2(1);\n\
               \x20   reg.add(\"proto\", \"good\", &[(\"node\", n), (\"algo\", a)], 1);\n\
               }\n";
    let mut w = ws(vec![sf("crates/doma-protocol/src/o.rs", src)]);
    w.design = DESIGN_STUB.to_string();
    let report = run(&w).unwrap();
    let oc: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "obs-catalog")
        .collect();
    assert_eq!(oc.len(), 2, "{report:?}");
    assert_eq!(oc[0].line, 3, "bogus metric name");
    assert!(oc[0].message.contains("proto.bogus"));
    assert_eq!(oc[1].line, 4, "algo after node");
    assert!(oc[1].message.contains("not sorted"));
}

#[test]
fn obs_catalog_only_reads_section_eight() {
    // `not.a_metric_section` appears under §7 — it is not catalog.
    let src = "fn f(reg: &Registry) { reg.counter(\"not\", \"a_metric_section\", &[]); }\n";
    let mut w = ws(vec![sf("crates/doma-protocol/src/o.rs", src)]);
    w.design = DESIGN_STUB.to_string();
    let report = run(&w).unwrap();
    assert_finding(
        &report.findings,
        "crates/doma-protocol/src/o.rs",
        1,
        "obs-catalog",
    );
}

// ---------------------------------------------------------------------------
// span-catalog
// ---------------------------------------------------------------------------

#[test]
fn span_catalog_catches_uncataloged_span_names() {
    let src = "fn f(log: &EventLog) {\n\
               \x20   let a = log.span_enter(5, \"proto.span_ok\", Vec::new());\n\
               \x20   let b = log.span_enter(6, \"proto.rogue\", Vec::new());\n\
               \x20   let c = span!(log, 7, \"proto.rogue2\", node = 1);\n\
               }\n";
    let mut w = ws(vec![sf("crates/doma-sim/src/s.rs", src)]);
    w.design = DESIGN_STUB.to_string();
    let report = run(&w).unwrap();
    let sc: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "span-catalog")
        .collect();
    assert_eq!(sc.len(), 2, "{report:?}");
    assert_eq!(
        (sc[0].file.as_str(), sc[0].line),
        ("crates/doma-sim/src/s.rs", 3),
        "rogue span_enter name literal"
    );
    assert!(sc[0].message.contains("proto.rogue"));
    assert_eq!(
        (sc[1].file.as_str(), sc[1].line),
        ("crates/doma-sim/src/s.rs", 4),
        "rogue span! macro name literal"
    );
    assert!(sc[1].message.contains("proto.rogue2"));
}

#[test]
fn span_catalog_only_reads_section_thirteen() {
    // `proto.good` lives in the §8 metric catalog, not §13 — a span
    // named after a metric still needs its own §13 row.
    let src = "fn f(log: &EventLog) { log.span_enter(1, \"proto.good\", Vec::new()); }\n";
    let mut w = ws(vec![sf("crates/doma-sim/src/s.rs", src)]);
    w.design = DESIGN_STUB.to_string();
    let report = run(&w).unwrap();
    assert_finding(
        &report.findings,
        "crates/doma-sim/src/s.rs",
        1,
        "span-catalog",
    );
}

// ---------------------------------------------------------------------------
// stale-allowlist
// ---------------------------------------------------------------------------

#[test]
fn stale_allowlist_entries_become_findings() {
    let mut w = ws(vec![sf("crates/doma-sim/src/a.rs", "fn f() {}\n")]);
    w.allowlist = Some(
        "# header comment\n\
         determinism crates/doma-sim/src/a.rs env::var\n"
            .to_string(),
    );
    let report = run(&w).unwrap();
    assert_finding(&report.findings, "lint-allow.list", 2, "stale-allowlist");
    assert_eq!(report.findings.len(), 1);
}

// ---------------------------------------------------------------------------
// The real tree
// ---------------------------------------------------------------------------

#[test]
fn the_real_tree_is_findings_free() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let ws = doma_lint::load_workspace(&root).expect("workspace loads");
    let report = run(&ws).expect("lint runs");
    assert!(
        report.findings.is_empty(),
        "the checked-in tree must lint clean: {:#?}",
        report.findings
    );
    assert!(report.files_checked > 100, "walker saw the whole tree");
}

//! The sanctioned debug-output path.
//!
//! The lint wall (`doma-lint`, rule `no-adhoc-print`) forbids
//! `println!`/`eprintln!` in non-test, non-bin code of the instrumented
//! crates: ad-hoc prints bypass the event log and make output
//! nondeterministic to capture. Environment-gated debug tracing that
//! genuinely must stream to the terminal while a run is live (e.g.
//! `DOMA_FAULT_TRACE`) goes through this single choke point instead, so
//! the escape hatch is grep-able and reviewed.

use std::io::Write;

/// Writes one line to stderr, ignoring I/O errors (debug output must
/// never turn into a failure path).
pub fn debug_line(line: &str) {
    let mut err = std::io::stderr().lock();
    let _ = writeln!(err, "{line}");
}

#[cfg(test)]
mod tests {
    #[test]
    fn debug_line_does_not_panic() {
        super::debug_line("doma-obs console smoke line");
    }
}

//! The bounded, seekable event log and span records.
//!
//! Records carry a global monotone `index`, so a consumer can *seek*:
//! remember the last index it saw and fetch only newer records with
//! [`EventLog::snapshot_from`], even across ring-buffer wraps. A wrap
//! never loses information silently — [`EventLog::dropped_events`]
//! counts every discarded record.

use crate::json::escape;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::{Arc, Mutex};

/// Where a record sits in a span's lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventPhase {
    /// A free-standing event.
    Point,
    /// A span opened here.
    Enter,
    /// A span closed here; `duration` is in the caller's sim-time ticks.
    Exit {
        /// Exit time minus enter time, in ticks.
        duration: u64,
    },
}

/// One structured record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Global monotone position in the log (survives wraps).
    pub index: u64,
    /// The caller's virtual time, in ticks.
    pub time: u64,
    /// Dot-separated event name, `component.event` by convention
    /// (`sim.crash`, `protocol.quorum_read`…).
    pub name: String,
    /// Ordered `(key, value)` payload fields.
    pub fields: Vec<(String, String)>,
    /// Point, span-enter or span-exit.
    pub phase: EventPhase,
}

impl EventRecord {
    /// The stable JSON object for this record.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"index\": {}, \"time\": {}, \"name\": \"{}\", \"phase\": ",
            self.index,
            self.time,
            escape(&self.name)
        );
        match &self.phase {
            EventPhase::Point => out.push_str("\"point\""),
            EventPhase::Enter => out.push_str("\"enter\""),
            EventPhase::Exit { duration } => {
                out.push_str(&format!("\"exit\", \"duration\": {duration}"))
            }
        }
        out.push_str(", \"fields\": {");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": \"{}\"", escape(k), escape(v)));
        }
        out.push_str("}}");
        out
    }
}

impl fmt::Display for EventRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{} t={} {}", self.index, self.time, self.name)?;
        for (k, v) in &self.fields {
            write!(f, " {k}={v}")?;
        }
        match &self.phase {
            EventPhase::Point => Ok(()),
            EventPhase::Enter => write!(f, " [span enter]"),
            EventPhase::Exit { duration } => write!(f, " [span exit Δt={duration}]"),
        }
    }
}

#[derive(Debug)]
struct OpenSpan {
    name: String,
    fields: Vec<(String, String)>,
    enter_time: u64,
}

#[derive(Debug)]
struct Inner {
    records: VecDeque<EventRecord>,
    capacity: usize,
    dropped: u64,
    next_index: u64,
    open_spans: BTreeMap<u64, OpenSpan>,
    next_span: u64,
}

/// An identifier for an open span, returned by
/// [`EventLog::span_enter`] and consumed by [`EventLog::span_exit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SpanId(u64);

/// A cloneable handle on a bounded event log. When the buffer is full
/// the oldest records are discarded **and counted** — see
/// [`EventLog::dropped_events`].
#[derive(Debug, Clone)]
pub struct EventLog {
    inner: Arc<Mutex<Inner>>,
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog::new(256)
    }
}

impl EventLog {
    /// A log retaining at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        EventLog {
            inner: Arc::new(Mutex::new(Inner {
                records: VecDeque::new(),
                capacity: capacity.max(1),
                dropped: 0,
                next_index: 0,
                open_spans: BTreeMap::new(),
                next_span: 0,
            })),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn push(
        inner: &mut Inner,
        time: u64,
        name: &str,
        fields: Vec<(String, String)>,
        phase: EventPhase,
    ) -> u64 {
        if inner.records.len() == inner.capacity {
            inner.records.pop_front();
            inner.dropped += 1;
        }
        let index = inner.next_index;
        inner.next_index += 1;
        inner.records.push_back(EventRecord {
            index,
            time,
            name: name.to_string(),
            fields,
            phase,
        });
        index
    }

    /// Appends a point event; returns its global index.
    pub fn record(&self, time: u64, name: &str, fields: Vec<(String, String)>) -> u64 {
        let mut inner = self.lock();
        Self::push(&mut inner, time, name, fields, EventPhase::Point)
    }

    /// Opens a span: appends an enter record and remembers the enter
    /// time so the matching [`EventLog::span_exit`] can carry the
    /// sim-time duration.
    pub fn span_enter(&self, time: u64, name: &str, fields: Vec<(String, String)>) -> SpanId {
        let mut inner = self.lock();
        Self::push(&mut inner, time, name, fields.clone(), EventPhase::Enter);
        let id = inner.next_span;
        inner.next_span += 1;
        inner.open_spans.insert(
            id,
            OpenSpan {
                name: name.to_string(),
                fields,
                enter_time: time,
            },
        );
        SpanId(id)
    }

    /// Closes a span: appends an exit record carrying
    /// `time - enter_time`. Unknown (or already-closed) ids are ignored.
    pub fn span_exit(&self, id: SpanId, time: u64) {
        let mut inner = self.lock();
        if let Some(span) = inner.open_spans.remove(&id.0) {
            let duration = time.saturating_sub(span.enter_time);
            Self::push(
                &mut inner,
                time,
                &span.name,
                span.fields,
                EventPhase::Exit { duration },
            );
        }
    }

    /// Appends a pre-built record (typically taken from another log's
    /// snapshot), preserving its time, name, fields and phase but
    /// assigning this log's own next index. The shard merge folds
    /// per-shard logs into one master log with it; span bookkeeping is
    /// deliberately untouched — a copied `Enter`/`Exit` pair already
    /// carries its duration.
    pub fn append_record(&self, record: &EventRecord) -> u64 {
        let mut inner = self.lock();
        Self::push(
            &mut inner,
            record.time,
            &record.name,
            record.fields.clone(),
            record.phase.clone(),
        )
    }

    /// Adds `n` to the dropped-records counter — used when folding in
    /// another log whose own capacity bound already discarded records.
    pub fn add_dropped(&self, n: u64) {
        self.lock().dropped += n;
    }

    /// The retained records, oldest first.
    pub fn snapshot(&self) -> Vec<EventRecord> {
        self.lock().records.iter().cloned().collect()
    }

    /// Seek: the retained records with `index >= from`, oldest first.
    /// Records older than the retention window are gone (but counted in
    /// [`EventLog::dropped_events`]).
    pub fn snapshot_from(&self, from: u64) -> Vec<EventRecord> {
        self.lock()
            .records
            .iter()
            .filter(|r| r.index >= from)
            .cloned()
            .collect()
    }

    /// The last `n` retained records, oldest first.
    pub fn tail(&self, n: usize) -> Vec<EventRecord> {
        let inner = self.lock();
        let skip = inner.records.len().saturating_sub(n);
        inner.records.iter().skip(skip).cloned().collect()
    }

    /// Number of records discarded by the capacity bound since
    /// construction (or the last [`EventLog::clear`]).
    pub fn dropped_events(&self) -> u64 {
        self.lock().dropped
    }

    /// The index the *next* record will get (== total records ever
    /// appended). A consumer stores this to seek later.
    pub fn next_index(&self) -> u64 {
        self.lock().next_index
    }

    /// Number of currently retained records.
    pub fn len(&self) -> usize {
        self.lock().records.len()
    }

    /// Whether no records are retained.
    pub fn is_empty(&self) -> bool {
        self.lock().records.is_empty()
    }

    /// Drops all retained records, the dropped counter and any open
    /// spans; indices restart from zero.
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.records.clear();
        inner.dropped = 0;
        inner.next_index = 0;
        inner.open_spans.clear();
    }

    /// Renders the retained records one per line.
    pub fn render(&self) -> String {
        self.snapshot()
            .iter()
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Opens a span on an [`EventLog`]: `span!(log, time, "da.write",
/// obj = o, node = n)` appends an enter record with the named fields and
/// returns the [`SpanId`] to pass to [`EventLog::span_exit`].
#[macro_export]
macro_rules! span {
    ($log:expr, $time:expr, $name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        $log.span_enter(
            $time,
            $name,
            vec![$((stringify!($key).to_string(), format!("{}", $val)),)*],
        )
    };
}

/// Appends a point event: `event!(log, time, "sim.crash", node = id)`.
#[macro_export]
macro_rules! event {
    ($log:expr, $time:expr, $name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        $log.record(
            $time,
            $name,
            vec![$((stringify!($key).to_string(), format!("{}", $val)),)*],
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_counts_dropped_events_and_keeps_indices() {
        let log = EventLog::new(2);
        for t in 0..5u64 {
            log.record(t, "e", vec![]);
        }
        assert_eq!(log.dropped_events(), 3);
        let snap = log.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].index, 3);
        assert_eq!(snap[1].index, 4);
        assert_eq!(log.next_index(), 5);
    }

    #[test]
    fn snapshot_from_seeks_by_global_index() {
        let log = EventLog::new(10);
        for t in 0..6u64 {
            log.record(t, "e", vec![]);
        }
        let newer = log.snapshot_from(4);
        assert_eq!(newer.len(), 2);
        assert_eq!(newer[0].index, 4);
    }

    #[test]
    fn spans_carry_sim_time_durations() {
        let log = EventLog::new(10);
        let id = span!(log, 5, "da.write", obj = "obj0", node = 2);
        log.record(6, "between", vec![]);
        log.span_exit(id, 9);
        let snap = log.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].phase, EventPhase::Enter);
        assert_eq!(snap[2].phase, EventPhase::Exit { duration: 4 });
        assert_eq!(snap[2].name, "da.write");
        assert_eq!(snap[2].fields[0], ("obj".to_string(), "obj0".to_string()));
        log.span_exit(id, 20); // double-exit is ignored
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn tail_and_render_and_clear() {
        let log = EventLog::new(10);
        event!(log, 1, "a.one", k = 1);
        event!(log, 2, "a.two");
        assert_eq!(log.tail(1)[0].name, "a.two");
        assert_eq!(log.render(), "#0 t=1 a.one k=1\n#1 t=2 a.two");
        log.clear();
        assert!(log.is_empty());
        assert_eq!(log.dropped_events(), 0);
        assert_eq!(log.next_index(), 0);
    }

    #[test]
    fn record_json_is_stable() {
        let log = EventLog::new(4);
        let id = log.span_enter(2, "p.span", vec![("node".into(), "N1".into())]);
        log.span_exit(id, 7);
        let snap = log.snapshot();
        assert_eq!(
            snap[1].to_json(),
            "{\"index\": 1, \"time\": 7, \"name\": \"p.span\", \"phase\": \"exit\", \
             \"duration\": 5, \"fields\": {\"node\": \"N1\"}}"
        );
    }
}

//! Causal request tracing over the event log: per-request spans,
//! message-level happens-before edges, a deterministic critical-path
//! analyzer, a byte-stable Chrome trace-event exporter and the
//! "slowest-K requests" text report.
//!
//! The protocol driver brackets every request between a
//! [`REQUEST_SPAN`] enter/exit pair and emits one [`REQUEST_COST_EVENT`]
//! carrying the request's *exact* control/data/io delta (the driver is
//! strictly one-request-at-a-time, so the deltas telescope to the
//! schedule total — the property test in `doma-protocol` proves the sum
//! equals `cost_of_schedule`). The engine's tracer interleaves one
//! [`MESSAGE_EVENT`] record per delivery into the same log, so every
//! record between an enter and its exit belongs to that request's
//! causal window. Shard-merged logs carry a `shard` field per record
//! (see [`crate::Obs::merge_shards`]); the model brackets per shard, so
//! K-shard traces reconstruct exactly.
//!
//! Everything here is a pure function of the record slice: no clocks,
//! no randomness, `BTreeMap` iteration only — two runs of the same
//! seeded scenario export byte-identical Chrome JSON.

use crate::event::{EventPhase, EventRecord};
use crate::json::escape;
use crate::Obs;
use std::collections::BTreeMap;

/// Span name bracketing one request's full execution window
/// (`doma-protocol` opens it at injection, closes it at quiescence).
pub const REQUEST_SPAN: &str = "protocol.request";
/// Point event carrying one request's exact cost delta
/// (`control`/`data`/`io` fields).
pub const REQUEST_COST_EVENT: &str = "protocol.request_cost";
/// Point event recording an adaptive oracle's plan decision.
pub const PLAN_EVENT: &str = "protocol.plan";
/// The engine tracer's per-delivery record name (`doma-sim`).
pub const MESSAGE_EVENT: &str = "sim.trace";
/// Synthetic marker the exporters emit when the bounded log evicted
/// records out of an open request window (never silently corrupt).
pub const TRUNCATED_MARKER: &str = "trace.truncated";

/// One message delivery (or drop) inside a request's causal window,
/// parsed from a [`MESSAGE_EVENT`] record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MsgEdge {
    /// The record's virtual time (shard-local ticks).
    pub time: u64,
    /// Sending node index, as the tracer printed it.
    pub from: String,
    /// Receiving node index.
    pub to: String,
    /// `Control` or `Data`.
    pub kind: String,
    /// Whether the message was delivered (`false` = dropped by a fault).
    pub delivered: bool,
    /// Human-readable wire label (e.g. `ReadReq(obj0,saving)`).
    pub label: String,
}

/// One reconstructed per-request trace: the span bracket, the exact
/// cost delta, the plan decision (adaptive objects only) and every
/// message delivered inside the window.
#[derive(Debug, Clone)]
pub struct RequestTrace {
    /// Shard the records came from (`None` for an unsharded log).
    pub shard: Option<usize>,
    /// The driver's request sequence number (`req` span field).
    pub req: u64,
    /// `read` or `write`.
    pub op: String,
    /// Target object, as printed by the driver.
    pub object: String,
    /// Issuing processor, as printed by the driver.
    pub issuer: String,
    /// Span enter time (shard-local ticks).
    pub start: u64,
    /// Span duration in ticks (0 until the exit record is seen).
    pub duration: u64,
    /// Whether the exit record was observed.
    pub complete: bool,
    /// The request's exact `(control, data, io)` delta, when the cost
    /// event survived the log bound.
    pub cost: Option<(u64, u64, u64)>,
    /// The adaptive oracle's decision summary, when one was recorded.
    pub plan: Option<String>,
    /// Every [`MESSAGE_EVENT`] inside the window, in delivery order.
    pub messages: Vec<MsgEdge>,
}

impl RequestTrace {
    /// The deterministic critical path through this request's delivered
    /// messages: indices into [`RequestTrace::messages`], in causal
    /// order. Reconstructed backward from the last delivery — each
    /// step's predecessor is the *latest* earlier delivery into the
    /// current sender (`pred.to == cur.from`, `pred.time <= cur.time`);
    /// delivery order breaks ties, so the path is a pure function of
    /// the record sequence.
    pub fn critical_path(&self) -> Vec<usize> {
        let delivered: Vec<usize> = (0..self.messages.len())
            .filter(|&i| self.messages[i].delivered)
            .collect();
        let Some(&last) = delivered.last() else {
            return Vec::new();
        };
        let mut path = vec![last];
        let mut cur = last;
        loop {
            let cur_msg = &self.messages[cur];
            let pred = delivered
                .iter()
                .rev()
                .filter(|&&i| i < cur)
                .find(|&&i| {
                    let m = &self.messages[i];
                    m.to == cur_msg.from && m.time <= cur_msg.time
                })
                .copied();
            match pred {
                Some(p) => {
                    path.push(p);
                    cur = p;
                }
                None => break,
            }
        }
        path.reverse();
        path
    }
}

/// The reconstructed trace of a whole run: every request window found
/// in the record slice, plus the truncation accounting that keeps a
/// wrapped log honest.
#[derive(Debug, Clone, Default)]
pub struct TraceModel {
    /// Per-request traces, in log order.
    pub requests: Vec<RequestTrace>,
    /// Records the bounded log evicted before the snapshot.
    pub dropped_events: u64,
    /// `REQUEST_SPAN` exits whose enter record was evicted — the
    /// wrap-around blind spot; exporters surface these as a
    /// [`TRUNCATED_MARKER`] instead of fabricating a window.
    pub orphan_exits: u64,
}

fn field<'a>(record: &'a EventRecord, key: &str) -> Option<&'a str> {
    record
        .fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

fn shard_of(record: &EventRecord) -> Option<usize> {
    field(record, "shard").and_then(|v| v.parse().ok())
}

fn parse_u64(s: Option<&str>) -> u64 {
    s.and_then(|v| v.parse().ok()).unwrap_or(0)
}

impl TraceModel {
    /// Reconstructs the model from an obs bundle's retained records.
    pub fn from_obs(obs: &Obs) -> Self {
        Self::from_records(&obs.events().snapshot(), obs.events().dropped_events())
    }

    /// Reconstructs the model from a record slice (oldest first, as
    /// [`crate::EventLog::snapshot`] returns them). `dropped` is the
    /// log's eviction count; a non-zero value plus an exit-without-
    /// enter marks the head of the log as truncated.
    pub fn from_records(records: &[EventRecord], dropped: u64) -> Self {
        let mut model = TraceModel {
            requests: Vec::new(),
            dropped_events: dropped,
            orphan_exits: 0,
        };
        // Per shard, the index (into model.requests) of the open window.
        let mut open: BTreeMap<Option<usize>, usize> = BTreeMap::new();
        for record in records {
            let shard = shard_of(record);
            if record.name == REQUEST_SPAN {
                match &record.phase {
                    EventPhase::Enter => {
                        model.requests.push(RequestTrace {
                            shard,
                            req: parse_u64(field(record, "req")),
                            op: field(record, "op").unwrap_or("?").to_string(),
                            object: field(record, "object").unwrap_or("?").to_string(),
                            issuer: field(record, "issuer").unwrap_or("?").to_string(),
                            start: record.time,
                            duration: 0,
                            complete: false,
                            cost: None,
                            plan: None,
                            messages: Vec::new(),
                        });
                        open.insert(shard, model.requests.len() - 1);
                    }
                    EventPhase::Exit { duration } => match open.remove(&shard) {
                        Some(i) => {
                            if let Some(req) = model.requests.get_mut(i) {
                                req.duration = *duration;
                                req.complete = true;
                            }
                        }
                        None => model.orphan_exits += 1,
                    },
                    EventPhase::Point => {}
                }
                continue;
            }
            let Some(&i) = open.get(&shard) else {
                continue; // pre/post-amble record outside any window
            };
            let Some(req) = model.requests.get_mut(i) else {
                continue;
            };
            match record.name.as_str() {
                MESSAGE_EVENT => req.messages.push(MsgEdge {
                    time: record.time,
                    from: field(record, "from").unwrap_or("?").to_string(),
                    to: field(record, "to").unwrap_or("?").to_string(),
                    kind: field(record, "kind").unwrap_or("?").to_string(),
                    delivered: field(record, "delivered") == Some("true"),
                    label: field(record, "label").unwrap_or("").to_string(),
                }),
                REQUEST_COST_EVENT => {
                    req.cost = Some((
                        parse_u64(field(record, "control")),
                        parse_u64(field(record, "data")),
                        parse_u64(field(record, "io")),
                    ));
                }
                PLAN_EVENT => {
                    req.plan = field(record, "decision").map(str::to_string);
                }
                _ => {}
            }
        }
        model
    }

    /// Whether the bounded log cut into the trace (evictions or
    /// exit-without-enter orphans).
    pub fn truncated(&self) -> bool {
        self.dropped_events > 0 || self.orphan_exits > 0
    }

    /// Sums the per-request cost deltas: `(control, data, io)`. Equal to
    /// the run's exact [`SimReport`-style] totals when no window was
    /// truncated — the critical-path-equals-cost property test in
    /// `doma-protocol` pins this against `cost_of_schedule`.
    ///
    /// [`SimReport`-style]: RequestTrace::cost
    pub fn total_cost(&self) -> (u64, u64, u64) {
        let mut total = (0u64, 0u64, 0u64);
        for req in &self.requests {
            if let Some((c, d, io)) = req.cost {
                total.0 += c;
                total.1 += d;
                total.2 += io;
            }
        }
        total
    }

    /// Request indices sorted slowest-first: duration descending, then
    /// `(shard, log order)` ascending — a total, deterministic order.
    pub fn slowest(&self, k: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.requests.len()).collect();
        order.sort_by_key(|&i| {
            let r = &self.requests[i];
            (u64::MAX - r.duration, r.shard.unwrap_or(0), i)
        });
        order.truncate(k);
        order
    }
}

/// Extracts the numeric suffix of a node/processor label (`"3"`,
/// `"P3"`, `"N3"` all map to 3) for Chrome pid/tid slots.
fn ordinal(s: &str) -> u64 {
    let digits: String = s.chars().filter(|c| c.is_ascii_digit()).collect();
    digits.parse().unwrap_or(0)
}

fn push_args(out: &mut String, args: &[(&str, String)]) {
    out.push_str("\"args\": {");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\": \"{}\"", escape(k), escape(v)));
    }
    out.push_str("}}");
}

/// Exports the model as Chrome trace-event JSON (the
/// `{"traceEvents": […]}` object format; loadable in Perfetto /
/// `chrome://tracing`). Timestamps are virtual ticks verbatim; the
/// `pid` slot carries the shard, the `tid` slot the node. Request
/// windows become complete (`"X"`) events, deliveries become thread
/// instants (`"i"`) on the receiving node with critical-path members
/// flagged `"cp": "1"`, and a truncated log yields one leading
/// [`TRUNCATED_MARKER`] instant instead of fabricated windows.
/// Byte-stable: a pure function of the model.
pub fn chrome_trace(model: &TraceModel) -> String {
    let mut events: Vec<String> = Vec::new();
    if model.truncated() {
        let mut e = format!(
            "{{\"name\": \"{TRUNCATED_MARKER}\", \"cat\": \"meta\", \"ph\": \"i\", \
             \"ts\": 0, \"pid\": 0, \"tid\": 0, \"s\": \"g\", "
        );
        push_args(
            &mut e,
            &[
                ("dropped_events", model.dropped_events.to_string()),
                ("orphan_exits", model.orphan_exits.to_string()),
            ],
        );
        events.push(e);
    }
    let mut shards: BTreeMap<u64, ()> = BTreeMap::new();
    for req in &model.requests {
        shards.insert(req.shard.unwrap_or(0) as u64, ());
    }
    for shard in shards.keys() {
        let mut e =
            format!("{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {shard}, \"tid\": 0, ");
        push_args(&mut e, &[("name", format!("shard {shard}"))]);
        events.push(e);
    }
    for req in &model.requests {
        let pid = req.shard.unwrap_or(0);
        let cp: Vec<usize> = req.critical_path();
        let mut e = format!(
            "{{\"name\": \"{}\", \"cat\": \"request\", \"ph\": \"X\", \"ts\": {}, \
             \"dur\": {}, \"pid\": {pid}, \"tid\": {}, ",
            escape(REQUEST_SPAN),
            req.start,
            req.duration,
            ordinal(&req.issuer),
        );
        let (c, d, io) = req.cost.unwrap_or((0, 0, 0));
        let mut args = vec![
            ("req", req.req.to_string()),
            ("op", req.op.clone()),
            ("object", req.object.clone()),
            ("issuer", req.issuer.clone()),
            ("control", c.to_string()),
            ("data", d.to_string()),
            ("io", io.to_string()),
        ];
        if let Some(plan) = &req.plan {
            args.push(("plan", plan.clone()));
        }
        if !req.complete {
            args.push(("incomplete", "1".to_string()));
        }
        push_args(&mut e, &args);
        events.push(e);
        for (i, msg) in req.messages.iter().enumerate() {
            let mut e = format!(
                "{{\"name\": \"{}\", \"cat\": \"message\", \"ph\": \"i\", \"ts\": {}, \
                 \"pid\": {pid}, \"tid\": {}, \"s\": \"t\", ",
                escape(&msg.label),
                msg.time,
                ordinal(&msg.to),
            );
            let mut args = vec![
                ("req", req.req.to_string()),
                ("from", msg.from.clone()),
                ("to", msg.to.clone()),
                ("kind", msg.kind.clone()),
                ("delivered", msg.delivered.to_string()),
            ];
            if cp.contains(&i) {
                args.push(("cp", "1".to_string()));
            }
            push_args(&mut e, &args);
            events.push(e);
        }
    }
    let mut out = String::from("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(e);
    }
    out.push_str("]}");
    out
}

/// The "slowest-K requests with their critical paths" text report.
/// One block per request, slowest first; deterministic.
pub fn slowest_report(model: &TraceModel, k: usize) -> String {
    let mut out = String::new();
    if model.truncated() {
        out.push_str(&format!(
            "{TRUNCATED_MARKER}: {} records evicted, {} orphan span exits — \
             windows before the cut are not shown\n",
            model.dropped_events, model.orphan_exits
        ));
    }
    let order = model.slowest(k);
    out.push_str(&format!(
        "slowest {} of {} requests (by span duration, ticks):\n",
        order.len(),
        model.requests.len()
    ));
    for i in order {
        let req = &model.requests[i];
        let shard = req.shard.map(|s| format!(" shard={s}")).unwrap_or_default();
        let (c, d, io) = req.cost.unwrap_or((0, 0, 0));
        out.push_str(&format!(
            "  req #{} {} {} by {}{} t=[{}, {}] dur={} cost={}c/{}d/{}io{}\n",
            req.req,
            req.op,
            req.object,
            req.issuer,
            shard,
            req.start,
            req.start + req.duration,
            req.duration,
            c,
            d,
            io,
            if req.complete { "" } else { " [incomplete]" },
        ));
        if let Some(plan) = &req.plan {
            out.push_str(&format!("    plan: {plan}\n"));
        }
        let cp = req.critical_path();
        if cp.is_empty() {
            out.push_str("    critical path: local (no messages)\n");
        } else {
            out.push_str(&format!(
                "    critical path ({} of {} msgs):",
                cp.len(),
                req.messages.len()
            ));
            for idx in cp {
                let m = &req.messages[idx];
                out.push_str(&format!(
                    " [{}]{}->{} {} @{}",
                    m.kind, m.from, m.to, m.label, m.time
                ));
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventLog;

    fn kv(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    fn msg(log: &EventLog, time: u64, from: &str, to: &str, kind: &str, label: &str) {
        log.record(
            time,
            MESSAGE_EVENT,
            kv(&[
                ("from", from),
                ("to", to),
                ("kind", kind),
                ("delivered", "true"),
                ("label", label),
            ]),
        );
    }

    fn one_request_log() -> EventLog {
        let log = EventLog::new(64);
        let id = log.span_enter(
            10,
            REQUEST_SPAN,
            kv(&[
                ("issuer", "2"),
                ("object", "obj0"),
                ("op", "read"),
                ("req", "0"),
            ]),
        );
        msg(&log, 11, "2", "0", "Control", "ReadReq(obj0)");
        msg(&log, 14, "0", "2", "Data", "ObjData(obj0,v0)");
        log.record(
            14,
            REQUEST_COST_EVENT,
            kv(&[("control", "1"), ("data", "1"), ("io", "2"), ("req", "0")]),
        );
        log.span_exit(id, 14);
        log
    }

    #[test]
    fn reconstructs_request_windows_with_messages_and_cost() {
        let log = one_request_log();
        let model = TraceModel::from_records(&log.snapshot(), log.dropped_events());
        assert_eq!(model.requests.len(), 1);
        assert!(!model.truncated());
        let req = &model.requests[0];
        assert_eq!(req.op, "read");
        assert_eq!(req.object, "obj0");
        assert_eq!(req.start, 10);
        assert_eq!(req.duration, 4);
        assert!(req.complete);
        assert_eq!(req.cost, Some((1, 1, 2)));
        assert_eq!(req.messages.len(), 2);
        assert_eq!(model.total_cost(), (1, 1, 2));
    }

    #[test]
    fn critical_path_chains_backward_through_senders() {
        let log = EventLog::new(64);
        let id = log.span_enter(
            0,
            REQUEST_SPAN,
            kv(&[
                ("issuer", "3"),
                ("object", "obj0"),
                ("op", "write"),
                ("req", "0"),
            ]),
        );
        // 3 -> 0 (request), 0 -> 1 and 0 -> 2 fan-out; 2 -> 3 completion.
        msg(&log, 1, "3", "0", "Control", "WriteReq");
        msg(&log, 2, "0", "1", "Data", "WriteProp");
        msg(&log, 3, "0", "2", "Data", "WriteProp");
        msg(&log, 5, "2", "3", "Control", "Ack");
        log.span_exit(id, 5);
        let model = TraceModel::from_records(&log.snapshot(), 0);
        let req = &model.requests[0];
        let cp = req.critical_path();
        // Last delivery is 2->3; its sender 2 was reached by 0->2; 0 by 3->0.
        assert_eq!(cp, vec![0, 2, 3]);
    }

    #[test]
    fn dropped_deliveries_are_excluded_from_the_path() {
        let log = EventLog::new(64);
        let id = log.span_enter(0, REQUEST_SPAN, kv(&[("req", "0")]));
        msg(&log, 1, "1", "0", "Control", "Req");
        log.record(
            2,
            MESSAGE_EVENT,
            kv(&[
                ("from", "0"),
                ("to", "1"),
                ("kind", "Data"),
                ("delivered", "false"),
                ("label", "Lost"),
            ]),
        );
        log.span_exit(id, 3);
        let model = TraceModel::from_records(&log.snapshot(), 0);
        assert_eq!(model.requests[0].critical_path(), vec![0]);
    }

    #[test]
    fn wrap_around_yields_truncated_marker_not_corruption() {
        // Satellite: open spans, overflow the bounded log so the Enter
        // records are evicted, and assert the exits become an orphan
        // count + a synthetic marker — never a fabricated window.
        let log = EventLog::new(4);
        let id0 = log.span_enter(0, REQUEST_SPAN, kv(&[("req", "0")]));
        let id1 = log.span_enter(1, REQUEST_SPAN, kv(&[("req", "1")]));
        for t in 2..8u64 {
            msg(&log, t, "0", "1", "Control", "Flood");
        }
        // Both enters are long evicted; the open-span table still
        // closes them, appending exits with stored names.
        log.span_exit(id0, 9);
        log.span_exit(id1, 9);
        assert!(log.dropped_events() >= 4, "{}", log.dropped_events());
        let model = TraceModel::from_records(&log.snapshot(), log.dropped_events());
        assert!(model.truncated());
        assert_eq!(model.orphan_exits, 2, "evicted enters => orphan exits");
        assert!(model.requests.is_empty(), "no fabricated windows");
        let chrome = chrome_trace(&model);
        assert!(chrome.contains(TRUNCATED_MARKER), "{chrome}");
        assert!(chrome.contains("\"orphan_exits\": \"2\""), "{chrome}");
        let report = slowest_report(&model, 3);
        assert!(report.contains(TRUNCATED_MARKER), "{report}");
    }

    #[test]
    fn sharded_records_bracket_per_shard() {
        // Interleave two shards' windows the way merge_shards does:
        // records sorted by (time, shard, index), each with a shard
        // field. Shard 1's window opens inside shard 0's.
        let log = EventLog::new(64);
        let a = log.span_enter(0, REQUEST_SPAN, kv(&[("req", "0"), ("shard", "0")]));
        let b = log.span_enter(1, REQUEST_SPAN, kv(&[("req", "0"), ("shard", "1")]));
        log.record(
            2,
            MESSAGE_EVENT,
            kv(&[
                ("from", "1"),
                ("to", "2"),
                ("kind", "Control"),
                ("delivered", "true"),
                ("label", "B"),
                ("shard", "1"),
            ]),
        );
        log.record(
            2,
            MESSAGE_EVENT,
            kv(&[
                ("from", "3"),
                ("to", "4"),
                ("kind", "Control"),
                ("delivered", "true"),
                ("label", "A"),
                ("shard", "0"),
            ]),
        );
        log.span_exit(b, 3);
        log.span_exit(a, 4);
        // span_exit replays the *enter* fields, shard included.
        let model = TraceModel::from_records(&log.snapshot(), 0);
        assert_eq!(model.requests.len(), 2);
        let shard0 = model.requests.iter().find(|r| r.shard == Some(0)).unwrap();
        let shard1 = model.requests.iter().find(|r| r.shard == Some(1)).unwrap();
        assert_eq!(shard0.messages.len(), 1);
        assert_eq!(shard0.messages[0].label, "A");
        assert_eq!(shard1.messages.len(), 1);
        assert_eq!(shard1.messages[0].label, "B");
        assert!(shard0.complete && shard1.complete);
    }

    #[test]
    fn chrome_trace_is_byte_stable_and_shaped() {
        let log = one_request_log();
        let model = TraceModel::from_records(&log.snapshot(), 0);
        let a = chrome_trace(&model);
        let b = chrome_trace(&TraceModel::from_records(&log.snapshot(), 0));
        assert_eq!(a, b);
        assert!(a.starts_with("{\"displayTimeUnit\": \"ms\", \"traceEvents\": ["));
        assert!(a.ends_with("]}"));
        assert!(a.contains("\"ph\": \"X\""), "{a}");
        assert!(a.contains("\"ph\": \"i\""), "{a}");
        assert!(a.contains("\"cp\": \"1\""), "{a}");
        assert!(a.contains("\"process_name\""), "{a}");
        // Balanced braces — crude but effective well-formedness check.
        assert_eq!(a.matches('{').count(), a.matches('}').count());
    }

    #[test]
    fn slowest_report_orders_by_duration() {
        let log = EventLog::new(64);
        for (req, start, end) in [(0u64, 0u64, 3u64), (1, 4, 12), (2, 13, 14)] {
            let id = log.span_enter(
                start,
                REQUEST_SPAN,
                kv(&[
                    ("issuer", "1"),
                    ("object", "obj0"),
                    ("op", "read"),
                    ("req", &req.to_string()),
                ]),
            );
            log.span_exit(id, end);
        }
        let model = TraceModel::from_records(&log.snapshot(), 0);
        assert_eq!(model.slowest(2), vec![1, 0]);
        let report = slowest_report(&model, 2);
        let pos1 = report.find("req #1").unwrap();
        let pos0 = report.find("req #0").unwrap();
        assert!(pos1 < pos0, "slowest first: {report}");
        assert!(report.contains("critical path: local"), "{report}");
    }
}

//! Minimal hand-rolled JSON emission (the workspace is hermetic — no
//! serde). Only what the snapshot exporters need: string escaping.

/// Escapes a string for embedding inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_controls_quotes_and_backslashes() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }
}

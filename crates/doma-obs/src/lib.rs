//! `doma-obs`: the workspace's zero-dependency observability layer.
//!
//! The paper's whole argument is a cost accounting — `cio`/`cc`/`cd`
//! per read, write and save-read under the t-availability constraint —
//! and this crate makes that accounting visible *while it accrues*
//! instead of only as end-of-run totals:
//!
//! * [`MetricsRegistry`] — lock-cheap counters, gauges and fixed-bucket
//!   histograms keyed by `(component, name, labels)`. Handles resolve
//!   once under a lock and then update atomics, so the hot simulation
//!   paths pay one relaxed atomic add per event.
//! * [`EventLog`] — a bounded, seekable log of structured records with
//!   span support ([`span!`] → enter/exit pairs carrying sim-time
//!   durations). When the bound is hit the oldest records are discarded
//!   **and counted**: [`EventLog::dropped_events`] exposes the
//!   truncation instead of wrapping silently.
//! * [`Obs`] — the bundle the harnesses attach (registry + log), with a
//!   deterministic human table ([`std::fmt::Display`]) and a stable
//!   JSON snapshot ([`Obs::snapshot_json`]) consumed by `domactl obs`
//!   and appended to bench reports.
//! * [`trace`] — the causal layer over the log: per-request spans with
//!   message-level happens-before edges, a deterministic critical-path
//!   analyzer, a byte-stable Chrome trace-event exporter and the
//!   slowest-K text report behind `domactl trace`.
//!
//! # Determinism contract
//!
//! Nothing in this crate reads wall-clock time, the process id, or any
//! randomness. Every timestamp is the caller's virtual [`SimTime`]-style
//! tick; every snapshot iterates `BTreeMap`s in key order. Two runs of
//! the same seeded scenario therefore produce **byte-identical** JSON —
//! tests assert on snapshots directly, and `scripts/verify.sh` diffs two
//! `domactl obs` runs as a gate.
//!
//! [`SimTime`]: u64

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod console;
pub mod event;
pub mod json;
pub mod registry;
pub mod trace;

pub use event::{EventLog, EventPhase, EventRecord, SpanId};
pub use registry::{
    Counter, Gauge, Histogram, MetricKey, MetricValue, MetricsRegistry, MetricsSnapshot,
};
pub use trace::{MsgEdge, RequestTrace, TraceModel};

use std::fmt;

/// The attachable observability bundle: one metrics registry plus one
/// bounded event log. Cloning shares both (handles are `Arc`-backed);
/// the simulation engine, every protocol node and the fault driver all
/// hold clones of the same bundle.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    metrics: MetricsRegistry,
    events: EventLog,
}

impl Obs {
    /// A fresh bundle whose event log retains at most `event_capacity`
    /// records (older records are dropped *and counted*).
    pub fn new(event_capacity: usize) -> Self {
        Obs {
            metrics: MetricsRegistry::new(),
            events: EventLog::new(event_capacity),
        }
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The event log.
    pub fn events(&self) -> &EventLog {
        &self.events
    }

    /// Folds per-shard bundles into this one, deterministically:
    ///
    /// * metric snapshots merge via [`MetricsRegistry::merge`], so
    ///   counter totals, histogram tallies and the registered key set
    ///   are identical to a sequential run regardless of how many
    ///   shards produced them;
    /// * every shard's retained event records are interleaved by
    ///   `(time, shard, index)` — a total order, since indices are
    ///   unique within a shard — and appended with a `shard` label
    ///   (times stay shard-local: each shard's engine runs its own
    ///   virtual clock);
    /// * dropped-event counts sum.
    ///
    /// The `shard` label and shard-local event times are the *only*
    /// documented differences between a merged K-shard snapshot and the
    /// sequential one; the metrics section is byte-identical.
    pub fn merge_shards(&self, shards: &[Obs]) {
        let mut records: Vec<(u64, usize, u64, EventRecord)> = Vec::new();
        for (shard, bundle) in shards.iter().enumerate() {
            self.metrics.merge(&bundle.metrics().snapshot());
            self.events.add_dropped(bundle.events().dropped_events());
            for record in bundle.events().snapshot() {
                records.push((record.time, shard, record.index, record));
            }
        }
        records.sort_by_key(|(time, shard, index, _)| (*time, *shard, *index));
        for (_, shard, _, mut record) in records {
            record.fields.push(("shard".to_string(), shard.to_string()));
            self.events.append_record(&record);
        }
    }

    /// The stable JSON snapshot: `{"dropped_events": …, "events": […],
    /// "metrics": […]}` with every object key and metric row in a
    /// deterministic order. Byte-identical across two runs of the same
    /// seeded scenario.
    pub fn snapshot_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"dropped_events\": {}, \"events\": [",
            self.events.dropped_events()
        ));
        let records = self.events.snapshot();
        for (i, r) in records.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&r.to_json());
        }
        out.push_str("], \"metrics\": ");
        out.push_str(&self.metrics.snapshot().to_json());
        out.push('}');
        out
    }
}

impl fmt::Display for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "metrics:")?;
        write!(f, "{}", self.metrics.snapshot())?;
        writeln!(
            f,
            "events ({} retained, {} dropped):",
            self.events.len(),
            self.events.dropped_events()
        )?;
        for record in self.events.snapshot() {
            writeln!(f, "  {record}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_json_is_stable_and_shaped() {
        let obs = Obs::new(4);
        obs.metrics()
            .add("sim", "msgs_sent", &[("kind", "control")], 2);
        obs.events()
            .record(3, "sim.crash", vec![("node".into(), "N1".into())]);
        let a = obs.snapshot_json();
        let b = obs.snapshot_json();
        assert_eq!(a, b);
        assert!(
            a.starts_with("{\"dropped_events\": 0, \"events\": ["),
            "{a}"
        );
        assert!(a.contains("\"metrics\": ["), "{a}");
        assert!(a.contains("\"sim.crash\""), "{a}");
    }

    #[test]
    fn merge_shards_reproduces_sequential_metrics_and_orders_events() {
        // "Sequential" bundle: everything recorded into one registry.
        let seq = Obs::new(16);
        seq.metrics().add("p", "cost.io", &[("op", "read")], 3);
        seq.metrics().add("p", "cost.io", &[("op", "write")], 5);
        seq.metrics().histogram("p", "lat", &[], &[2, 8]).observe(1);
        seq.metrics().histogram("p", "lat", &[], &[2, 8]).observe(9);

        // Same totals split across two shard bundles.
        let s0 = Obs::new(16);
        s0.metrics().add("p", "cost.io", &[("op", "read")], 3);
        s0.metrics().histogram("p", "lat", &[], &[2, 8]).observe(9);
        s0.events().record(4, "late", vec![]);
        let s1 = Obs::new(16);
        s1.metrics().add("p", "cost.io", &[("op", "write")], 5);
        // Zero-valued key must still register so key sets match.
        s1.metrics().add("p", "cost.io", &[("op", "read")], 0);
        s1.metrics().histogram("p", "lat", &[], &[2, 8]).observe(1);
        s1.events().record(2, "early", vec![]);

        let merged = Obs::new(16);
        merged.merge_shards(&[s0, s1]);
        assert_eq!(
            merged.metrics().snapshot().to_json(),
            seq.metrics().snapshot().to_json()
        );
        // Events interleave by (time, shard, index) and carry the label.
        let events = merged.events().snapshot();
        assert_eq!(events[0].name, "early");
        assert_eq!(events[0].fields, vec![("shard".into(), "1".into())]);
        assert_eq!(events[1].name, "late");
        assert_eq!(events[1].fields, vec![("shard".into(), "0".into())]);
    }

    #[test]
    fn merge_shards_sums_dropped_events() {
        let shard = Obs::new(1);
        shard.events().record(1, "a", vec![]);
        shard.events().record(2, "b", vec![]);
        shard.events().record(3, "c", vec![]);
        assert_eq!(shard.events().dropped_events(), 2);
        let merged = Obs::new(8);
        merged.merge_shards(&[shard]);
        assert_eq!(merged.events().dropped_events(), 2);
        assert_eq!(merged.events().len(), 1);
    }

    #[test]
    fn display_lists_metrics_and_events() {
        let obs = Obs::new(2);
        obs.metrics().add("p", "cost.io", &[("op", "read")], 1);
        obs.events().record(1, "e.one", vec![]);
        obs.events().record(2, "e.two", vec![]);
        obs.events().record(3, "e.three", vec![]);
        let text = obs.to_string();
        assert!(text.contains("cost.io"), "{text}");
        assert!(text.contains("2 retained, 1 dropped"), "{text}");
    }
}

//! The metrics registry: named counters, gauges and fixed-bucket
//! histograms with label sets, resolved once under a lock and updated
//! through lock-free atomic handles thereafter.

use crate::json::escape;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A metric's identity: `(component, name, labels)`. Labels are sorted
/// at construction so equal label sets compare equal regardless of the
/// order the instrumentation site listed them in.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// The subsystem that owns the metric (`sim`, `protocol`, `fault`…).
    pub component: String,
    /// The metric name, dot-separated (`cost.io`, `msgs_sent`…).
    pub name: String,
    /// Sorted `(key, value)` label pairs (`op=read`, `node=N0`…).
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Builds a key, sorting the labels.
    pub fn new(component: &str, name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            component: component.to_string(),
            name: name.to_string(),
            labels,
        }
    }

    /// The value of one label, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

impl fmt::Display for MetricKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.component, self.name)?;
        if !self.labels.is_empty() {
            let rendered: Vec<String> = self
                .labels
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            write!(f, "{{{}}}", rendered.join(","))?;
        }
        Ok(())
    }
}

/// A pre-resolved counter handle: one relaxed atomic add per update.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current tally.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A pre-resolved gauge handle (a signed last-written value).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the value by `d`.
    pub fn adjust(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// The current value.
    pub fn value(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Inclusive upper bounds of the finite buckets; an implicit
    /// overflow bucket follows.
    bounds: Vec<u64>,
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    sum: AtomicU64,
}

/// A pre-resolved fixed-bucket histogram handle.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let core = &self.0;
        let idx = core
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(core.bounds.len());
        core.counts[idx].fetch_add(1, Ordering::Relaxed);
        core.total.fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(v, Ordering::Relaxed);
    }
}

/// An immutable point-in-time metric value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// A monotone tally.
    Counter(u64),
    /// A last-written value.
    Gauge(i64),
    /// Bucket counts (finite buckets by upper bound, then overflow),
    /// total observation count and sum.
    Histogram {
        /// Inclusive upper bounds of the finite buckets.
        bounds: Vec<u64>,
        /// Per-bucket counts; `counts.len() == bounds.len() + 1` (the
        /// last entry is the overflow bucket).
        counts: Vec<u64>,
        /// Total observations.
        total: u64,
        /// Sum of observations.
        sum: u64,
    },
}

#[derive(Debug, Clone)]
enum Slot {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistogramCore>),
}

impl Slot {
    fn value(&self) -> MetricValue {
        match self {
            Slot::Counter(c) => MetricValue::Counter(c.load(Ordering::Relaxed)),
            Slot::Gauge(g) => MetricValue::Gauge(g.load(Ordering::Relaxed)),
            Slot::Histogram(h) => MetricValue::Histogram {
                bounds: h.bounds.clone(),
                counts: h.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
                total: h.total.load(Ordering::Relaxed),
                sum: h.sum.load(Ordering::Relaxed),
            },
        }
    }
}

/// The shared registry. Cloning shares the underlying table; handle
/// resolution takes the lock once, after which updates go through the
/// returned atomic handles.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<BTreeMap<MetricKey, Slot>>>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<MetricKey, Slot>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Resolves (registering on first use) a counter handle. If the key
    /// is already registered as a different metric kind the returned
    /// handle is detached (its updates are not exported) — a total
    /// function beats a panic in instrumentation code.
    pub fn counter(&self, component: &str, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = MetricKey::new(component, name, labels);
        let mut table = self.lock();
        let slot = table
            .entry(key)
            .or_insert_with(|| Slot::Counter(Arc::new(AtomicU64::new(0))));
        match slot {
            Slot::Counter(c) => Counter(Arc::clone(c)),
            _ => Counter(Arc::new(AtomicU64::new(0))),
        }
    }

    /// Resolves (registering on first use) a gauge handle; kind
    /// mismatches detach, as for [`MetricsRegistry::counter`].
    pub fn gauge(&self, component: &str, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = MetricKey::new(component, name, labels);
        let mut table = self.lock();
        let slot = table
            .entry(key)
            .or_insert_with(|| Slot::Gauge(Arc::new(AtomicI64::new(0))));
        match slot {
            Slot::Gauge(g) => Gauge(Arc::clone(g)),
            _ => Gauge(Arc::new(AtomicI64::new(0))),
        }
    }

    /// Resolves (registering on first use) a histogram with the given
    /// finite bucket bounds (sorted ascending by the caller); kind
    /// mismatches detach, as for [`MetricsRegistry::counter`].
    pub fn histogram(
        &self,
        component: &str,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[u64],
    ) -> Histogram {
        let key = MetricKey::new(component, name, labels);
        let mut table = self.lock();
        let slot = table.entry(key).or_insert_with(|| {
            Slot::Histogram(Arc::new(HistogramCore {
                bounds: bounds.to_vec(),
                counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                total: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }))
        });
        match slot {
            Slot::Histogram(h) => Histogram(Arc::clone(h)),
            _ => Histogram(Arc::new(HistogramCore {
                bounds: bounds.to_vec(),
                counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                total: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            })),
        }
    }

    /// One-shot counter add for cold paths (takes the lock; hot paths
    /// should hold a resolved [`Counter`] instead).
    pub fn add(&self, component: &str, name: &str, labels: &[(&str, &str)], n: u64) {
        self.counter(component, name, labels).add(n);
    }

    /// Folds a snapshot into this registry: counters add, gauges take
    /// the snapshot's value, histograms add bucket counts, total and sum
    /// (created with the snapshot's bounds when absent). Keys are
    /// registered even at zero value, so merging the K per-shard
    /// registries of a sharded run reproduces the sequential registry's
    /// key set *and* totals exactly — the determinism contract the
    /// sharded executor's observability path rests on. Kind mismatches
    /// are ignored, consistent with the detached-handle policy above.
    pub fn merge(&self, other: &MetricsSnapshot) {
        let mut table = self.lock();
        for (key, value) in &other.metrics {
            match value {
                MetricValue::Counter(v) => {
                    let slot = table
                        .entry(key.clone())
                        .or_insert_with(|| Slot::Counter(Arc::new(AtomicU64::new(0))));
                    if let Slot::Counter(c) = slot {
                        c.fetch_add(*v, Ordering::Relaxed);
                    }
                }
                MetricValue::Gauge(v) => {
                    let slot = table
                        .entry(key.clone())
                        .or_insert_with(|| Slot::Gauge(Arc::new(AtomicI64::new(0))));
                    if let Slot::Gauge(g) = slot {
                        g.store(*v, Ordering::Relaxed);
                    }
                }
                MetricValue::Histogram {
                    bounds,
                    counts,
                    total,
                    sum,
                } => {
                    let slot = table.entry(key.clone()).or_insert_with(|| {
                        Slot::Histogram(Arc::new(HistogramCore {
                            bounds: bounds.clone(),
                            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                            total: AtomicU64::new(0),
                            sum: AtomicU64::new(0),
                        }))
                    });
                    if let Slot::Histogram(h) = slot {
                        for (bucket, add) in h.counts.iter().zip(counts) {
                            bucket.fetch_add(*add, Ordering::Relaxed);
                        }
                        h.total.fetch_add(*total, Ordering::Relaxed);
                        h.sum.fetch_add(*sum, Ordering::Relaxed);
                    }
                }
            }
        }
    }

    /// A deterministic point-in-time copy of every registered metric,
    /// in key order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            metrics: self
                .lock()
                .iter()
                .map(|(k, slot)| (k.clone(), slot.value()))
                .collect(),
        }
    }
}

/// An immutable, ordered snapshot of a registry.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Every metric at snapshot time, in key order.
    pub metrics: BTreeMap<MetricKey, MetricValue>,
}

impl MetricsSnapshot {
    /// Whether the snapshot holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// The value of one counter (0 when absent or not a counter).
    pub fn counter(&self, component: &str, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.metrics.get(&MetricKey::new(component, name, labels)) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// The sum of every counter with this component and name, across
    /// all label sets — e.g. total `protocol/cost.io` over every
    /// `(op, node, algo)` breakdown.
    pub fn sum_counters(&self, component: &str, name: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|(k, _)| k.component == component && k.name == name)
            .map(|(_, v)| match v {
                MetricValue::Counter(c) => *c,
                _ => 0,
            })
            .sum()
    }

    /// The component-wise difference `self - earlier`: counters and
    /// histogram counts subtract (saturating), gauges keep their current
    /// value. Metrics that did not change (zero delta) are omitted, so a
    /// delta renders as exactly the activity since `earlier`.
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = BTreeMap::new();
        for (key, value) in &self.metrics {
            let diff = match (value, earlier.metrics.get(key)) {
                (MetricValue::Counter(now), Some(MetricValue::Counter(then))) => {
                    let d = now.saturating_sub(*then);
                    (d > 0).then_some(MetricValue::Counter(d))
                }
                (MetricValue::Counter(now), _) => (*now > 0).then_some(MetricValue::Counter(*now)),
                (MetricValue::Gauge(now), Some(MetricValue::Gauge(then))) => {
                    (now != then).then_some(MetricValue::Gauge(*now))
                }
                (MetricValue::Gauge(now), _) => Some(MetricValue::Gauge(*now)),
                (
                    MetricValue::Histogram {
                        bounds,
                        counts,
                        total,
                        sum,
                    },
                    earlier_value,
                ) => {
                    let (then_counts, then_total, then_sum) = match earlier_value {
                        Some(MetricValue::Histogram {
                            counts: c,
                            total: t,
                            sum: s,
                            ..
                        }) => (c.clone(), *t, *s),
                        _ => (vec![0; counts.len()], 0, 0),
                    };
                    let d_total = total.saturating_sub(then_total);
                    (d_total > 0).then(|| MetricValue::Histogram {
                        bounds: bounds.clone(),
                        counts: counts
                            .iter()
                            .zip(then_counts.iter().chain(std::iter::repeat(&0)))
                            .map(|(now, then)| now.saturating_sub(*then))
                            .collect(),
                        total: d_total,
                        sum: sum.saturating_sub(then_sum),
                    })
                }
            };
            if let Some(d) = diff {
                out.insert(key.clone(), d);
            }
        }
        MetricsSnapshot { metrics: out }
    }

    /// The stable JSON array: one object per metric, keys and rows in
    /// deterministic order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, (key, value)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"component\": \"{}\", \"name\": \"{}\", \"labels\": {{",
                escape(&key.component),
                escape(&key.name)
            ));
            for (j, (k, v)) in key.labels.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\": \"{}\"", escape(k), escape(v)));
            }
            out.push_str("}, ");
            match value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("\"kind\": \"counter\", \"value\": {v}"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("\"kind\": \"gauge\", \"value\": {v}"));
                }
                MetricValue::Histogram {
                    bounds,
                    counts,
                    total,
                    sum,
                } => {
                    out.push_str("\"kind\": \"histogram\", \"buckets\": [");
                    for (j, count) in counts.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        match bounds.get(j) {
                            Some(le) => {
                                out.push_str(&format!("{{\"le\": {le}, \"count\": {count}}}"))
                            }
                            None => {
                                out.push_str(&format!("{{\"le\": \"inf\", \"count\": {count}}}"))
                            }
                        }
                    }
                    out.push_str(&format!("], \"total\": {total}, \"sum\": {sum}"));
                }
            }
            out.push('}');
        }
        out.push(']');
        out
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.metrics.is_empty() {
            return writeln!(f, "  (none)");
        }
        let width = self
            .metrics
            .keys()
            .map(|k| k.to_string().len())
            .max()
            .unwrap_or(0);
        for (key, value) in &self.metrics {
            match value {
                MetricValue::Counter(v) => {
                    writeln!(f, "  {:<width$}  {v}", key.to_string())?;
                }
                MetricValue::Gauge(v) => {
                    writeln!(f, "  {:<width$}  {v}", key.to_string())?;
                }
                MetricValue::Histogram { total, sum, .. } => {
                    writeln!(f, "  {:<width$}  n={total} sum={sum}", key.to_string())?
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_through_shared_handles() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("sim", "msgs_sent", &[("kind", "control")]);
        let b = reg.counter("sim", "msgs_sent", &[("kind", "control")]);
        a.add(2);
        b.inc();
        assert_eq!(a.value(), 3);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("sim", "msgs_sent", &[("kind", "control")]), 3);
    }

    #[test]
    fn label_order_does_not_split_keys() {
        let reg = MetricsRegistry::new();
        reg.add("p", "cost.io", &[("op", "read"), ("node", "N0")], 1);
        reg.add("p", "cost.io", &[("node", "N0"), ("op", "read")], 1);
        assert_eq!(reg.snapshot().metrics.len(), 1);
        assert_eq!(reg.snapshot().sum_counters("p", "cost.io"), 2);
    }

    #[test]
    fn kind_mismatch_detaches_instead_of_panicking() {
        let reg = MetricsRegistry::new();
        reg.add("a", "x", &[], 5);
        let g = reg.gauge("a", "x", &[]);
        g.set(9);
        assert_eq!(reg.snapshot().counter("a", "x", &[]), 5);
    }

    #[test]
    fn gauges_and_histograms_snapshot() {
        let reg = MetricsRegistry::new();
        reg.gauge("p", "join_list", &[("node", "N1")]).set(3);
        let h = reg.histogram("p", "read_latency", &[], &[1, 4, 16]);
        h.observe(0);
        h.observe(5);
        h.observe(100);
        let snap = reg.snapshot();
        assert_eq!(
            snap.metrics
                .get(&MetricKey::new("p", "join_list", &[("node", "N1")])),
            Some(&MetricValue::Gauge(3))
        );
        match snap.metrics.get(&MetricKey::new("p", "read_latency", &[])) {
            Some(MetricValue::Histogram {
                counts, total, sum, ..
            }) => {
                assert_eq!(counts, &vec![1, 0, 1, 1]);
                assert_eq!(*total, 3);
                assert_eq!(*sum, 105);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn delta_keeps_only_changed_metrics() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("p", "cost.control", &[("op", "read")]);
        c.add(2);
        let before = reg.snapshot();
        c.add(3);
        reg.add("p", "cost.data", &[("op", "write")], 1);
        let delta = reg.snapshot().delta(&before);
        assert_eq!(delta.metrics.len(), 2);
        assert_eq!(delta.counter("p", "cost.control", &[("op", "read")]), 3);
        assert_eq!(delta.counter("p", "cost.data", &[("op", "write")]), 1);
    }

    #[test]
    fn json_is_deterministic_and_ordered() {
        let reg = MetricsRegistry::new();
        reg.add("b", "later", &[], 1);
        reg.add("a", "first", &[("z", "1"), ("a", "2")], 1);
        let a = reg.snapshot().to_json();
        let b = reg.snapshot().to_json();
        assert_eq!(a, b);
        let first = a.find("\"first\"").expect("present");
        let later = a.find("\"later\"").expect("present");
        assert!(first < later, "{a}");
        assert!(
            a.contains("\"labels\": {\"a\": \"2\", \"z\": \"1\"}"),
            "{a}"
        );
    }
}

#!/usr/bin/env bash
# Tier-1 verification: the workspace must build and test fully offline,
# with no registry dependencies anywhere. Run from any directory.
#
#   scripts/verify.sh
#
# Exits non-zero if (a) any Cargo.toml declares a non-path dependency,
# (b) Cargo.lock references a crate outside the workspace, or (c) the
# offline build or test run fails.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

# ---------------------------------------------------------------------------
# Guard 1: every dependency in every manifest must be a path (or workspace =
# true, which resolves to a path in the root manifest). A version string,
# git URL or registry field means someone reintroduced a network dep.
# ---------------------------------------------------------------------------
fail=0
while IFS= read -r manifest; do
    # Inspect only dependency sections; flag entries that carry neither
    # `path = ...` nor `workspace = true`.
    bad=$(awk '
        /^\[/ { indeps = ($0 ~ /dependencies/) }
        indeps && /^[A-Za-z0-9_-]+[ \t]*=/ {
            if ($0 !~ /path[ \t]*=/ && $0 !~ /workspace[ \t]*=[ \t]*true/) print FILENAME ": " $0
        }
    ' "$manifest")
    if [ -n "$bad" ]; then
        echo "error: non-path dependency found:" >&2
        echo "$bad" >&2
        fail=1
    fi
done < <(find . -name Cargo.toml -not -path "./target/*")

if [ "$fail" -ne 0 ]; then
    echo "verify: FAILED (hermetic-dependency guard)" >&2
    exit 1
fi

# ---------------------------------------------------------------------------
# Guard 2: the lockfile must contain only workspace members — every package
# entry must carry no `source` field (registry packages always do).
# ---------------------------------------------------------------------------
if grep -q '^source = ' Cargo.lock; then
    echo "error: Cargo.lock references external sources:" >&2
    grep -B2 '^source = ' Cargo.lock >&2
    echo "verify: FAILED (lockfile guard)" >&2
    exit 1
fi

# ---------------------------------------------------------------------------
# Static-analysis wall: formatting, clippy at -D warnings, and the in-tree
# protocol linter (no panicking calls in protocol code, exhaustive message
# dispatch, lint headers in every crate root).
# ---------------------------------------------------------------------------
if ! cargo fmt --check; then
    echo "verify: FAILED (cargo fmt --check; run 'cargo fmt' and re-verify)" >&2
    exit 1
fi
if ! cargo clippy --workspace --offline --all-targets -q -- -D warnings; then
    echo "verify: FAILED (clippy -D warnings)" >&2
    exit 1
fi

# ---------------------------------------------------------------------------
# Build + test, fully offline.
# ---------------------------------------------------------------------------
cargo build --release --offline

# ---------------------------------------------------------------------------
# Semantic lint wall: the token-tree engine (determinism, lock-order,
# message-flow, obs-catalog + the legacy rules) must be findings-free, its
# JSON report must be byte-identical across two invocations (the same
# determinism bar the obs/scenario walls hold), and stale lint-allow.list
# entries fail the run (the engine reports them as findings).
# ---------------------------------------------------------------------------
lint_dir=$(mktemp -d)
trap 'rm -rf "$lint_dir"' EXIT
if ! ./target/release/domactl lint --format json > "$lint_dir/lint1.json"; then
    cat "$lint_dir/lint1.json" >&2
    echo "verify: FAILED (doma-lint wall: findings or stale allowlist entries above)" >&2
    exit 1
fi
./target/release/domactl lint --format json > "$lint_dir/lint2.json"
if ! cmp -s "$lint_dir/lint1.json" "$lint_dir/lint2.json"; then
    echo "verify: FAILED (domactl lint JSON differs across identical runs)" >&2
    exit 1
fi
if ! grep -qF '"findings": 0' "$lint_dir/lint1.json"; then
    echo "verify: FAILED (domactl lint reported findings)" >&2
    exit 1
fi

cargo test -q --offline --workspace

# ---------------------------------------------------------------------------
# Observability smoke: `domactl obs` must emit a JSON snapshot with the
# expected shape, byte-identical across two runs of the same inputs — the
# doma-obs determinism contract, checked end to end through the CLI.
# ---------------------------------------------------------------------------
obs_dir=$(mktemp -d)
trap 'rm -rf "$obs_dir" "$lint_dir"' EXIT
./target/release/domactl obs --schedule "r2 w3 r2 r1 w0 r3 w2 r0" --algo da > "$obs_dir/obs1.json"
./target/release/domactl obs --schedule "r2 w3 r2 r1 w0 r3 w2 r0" --algo da > "$obs_dir/obs2.json"
if ! cmp -s "$obs_dir/obs1.json" "$obs_dir/obs2.json"; then
    echo "verify: FAILED (domactl obs output differs across identical runs)" >&2
    exit 1
fi
for key in '"metrics"' '"events"' '"dropped_events"'; do
    if ! grep -q "$key" "$obs_dir/obs1.json"; then
        echo "verify: FAILED (domactl obs JSON missing $key)" >&2
        exit 1
    fi
done

# ---------------------------------------------------------------------------
# Tournament smoke: a small seven-entrant tournament must run end to end
# through the protocol sim, and the JSON export must be byte-identical
# across two runs — the stable-bench contract for BENCH_tournament.json.
# ---------------------------------------------------------------------------
./target/release/domactl tournament --n 5 --len 12 --seed 3 --format json > "$obs_dir/tour1.json"
./target/release/domactl tournament --n 5 --len 12 --seed 3 --format json > "$obs_dir/tour2.json"
if ! cmp -s "$obs_dir/tour1.json" "$obs_dir/tour2.json"; then
    echo "verify: FAILED (domactl tournament JSON differs across identical runs)" >&2
    exit 1
fi
for key in '"group": "tournament"' '"algo": "sa"' '"algo": "da"' '"algo": "convergent"' \
    '"algo": "write-invalidate"' '"algo": "cost-oblivious"' '"algo": "mobile-mirror"' \
    '"algo": "clustered"' '"attachment": "tournament/spec"'; do
    if ! grep -qF "$key" "$obs_dir/tour1.json"; then
        echo "verify: FAILED (domactl tournament JSON missing $key)" >&2
        exit 1
    fi
done

# ---------------------------------------------------------------------------
# Scenario wall: every builtin scenario runs end to end through the
# protocol sim with obs attached; `domactl scenario` exits non-zero if any
# expected-invariant block (cost vs OPT, t-availability, churn ceilings,
# obs parity, golden digest) is violated, and the exported JSON — obs
# snapshot included — must be byte-identical across two invocations: the
# golden-trace determinism contract, checked end to end through the CLI.
# ---------------------------------------------------------------------------
if ! ./target/release/domactl scenario all --format json > "$obs_dir/scen1.json"; then
    echo "verify: FAILED (a builtin scenario violated its expected-invariant block)" >&2
    exit 1
fi
./target/release/domactl scenario all --format json > "$obs_dir/scen2.json"
if ! cmp -s "$obs_dir/scen1.json" "$obs_dir/scen2.json"; then
    echo "verify: FAILED (domactl scenario JSON differs across identical runs)" >&2
    exit 1
fi
for key in '"scenario": "append-only-6-2"' '"scenario": "trace-replay"' \
    '"scenario": "mobile-handoff"' '"passed": true' '"digest": "0x'; do
    if ! grep -qF "$key" "$obs_dir/scen1.json"; then
        echo "verify: FAILED (domactl scenario JSON missing $key)" >&2
        exit 1
    fi
done
if grep -qF '"passed": false' "$obs_dir/scen1.json"; then
    echo "verify: FAILED (a builtin scenario reported passed: false)" >&2
    exit 1
fi

# ---------------------------------------------------------------------------
# Cluster-parity wall: the real runtime (doma-net) must reproduce the
# deterministic sim twin exactly — §6.2 append-only scenario over Unix
# domain sockets on loopback, 3 nodes, same seed and request schedule ⇒
# identical allocation-scheme trajectory, cost totals and protocol obs
# metrics. Fully offline (loopback only). Sandboxes that refuse sockets
# print a notice and skip; anything else is a wall failure.
# ---------------------------------------------------------------------------
if ! ./target/release/domactl cluster append-only-6-2 --nodes 3 --transport uds > "$obs_dir/cluster.txt" 2>&1; then
    cat "$obs_dir/cluster.txt" >&2
    echo "verify: FAILED (cluster diverged from the sim oracle)" >&2
    exit 1
fi
if grep -q "notice: sockets unavailable" "$obs_dir/cluster.txt"; then
    echo "verify: NOTICE (sockets unavailable in this sandbox; cluster-parity wall skipped)"
elif ! grep -q "parity: MATCH" "$obs_dir/cluster.txt"; then
    cat "$obs_dir/cluster.txt" >&2
    echo "verify: FAILED (cluster run produced no parity verdict)" >&2
    exit 1
fi

# ---------------------------------------------------------------------------
# Exhaustive small-bound model check: every built-in doma-check scenario
# (3–5 processors, up to 6 requests) must be explored to completion with
# zero violations. Exit 1 = counterexample (the tool prints the replayable
# trace); exit 2 = a budget was hit, which also fails tier-1 because the
# built-ins are sized to finish.
# ---------------------------------------------------------------------------
if ! cargo run -q --release --offline -p doma-check --bin doma-check; then
    echo "verify: FAILED (doma-check exhaustive small-bound scenarios)" >&2
    exit 1
fi

# ---------------------------------------------------------------------------
# Shard parity: object-sharded execution must reproduce the sequential
# driver exactly — report, holders and obs registry — for every shard
# count × placement cell, then once more with DOMA_SHARDS=1 forcing the
# serial in-thread worker path (the CI fallback for constrained boxes).
# ---------------------------------------------------------------------------
if ! cargo test -q --offline -p doma-protocol --test shard_parity; then
    echo "verify: FAILED (shard parity matrix)" >&2
    exit 1
fi
if ! DOMA_SHARDS=1 cargo test -q --offline -p doma-protocol --test shard_parity; then
    echo "verify: FAILED (shard parity under DOMA_SHARDS=1 serial fallback)" >&2
    exit 1
fi

# ---------------------------------------------------------------------------
# Fault matrix: 32 seeded fault plans per cell over the full tournament
# roster — {SA,DA} × {crash,partition,drop} plus two fault classes per
# adaptive allocator and the pinned per-allocator regression episodes —
# with the invariant checker auditing every step. On a violation the
# harness itself prints the exact `DOMA_FAULT_SEED=…` replay line; the hint
# below covers infrastructure failures (build breaks, panics outside the
# harness).
# ---------------------------------------------------------------------------
if ! DOMA_FAULT_SEEDS=32 cargo test -q --offline --test fault_torture; then
    echo "verify: FAILED (fault matrix)" >&2
    echo "hint: rerun one episode with DOMA_FAULT_SEED=0x<seed> cargo test --test fault_torture <cell>," >&2
    echo "      using the seed from the 'replay:' line above; DOMA_FAULT_TRACE=1 dumps per-step state." >&2
    exit 1
fi

# ---------------------------------------------------------------------------
# Trace-determinism gate: `domactl trace` must export byte-identical
# Chrome trace-event JSON across two invocations of the same seeded
# scenario — the doma-trace contract (virtual-tick timestamps, stable
# span/message ordering), checked end to end through the CLI.
# ---------------------------------------------------------------------------
./target/release/domactl trace append-only-6-2 --format chrome > "$obs_dir/trace1.json"
./target/release/domactl trace append-only-6-2 --format chrome > "$obs_dir/trace2.json"
if ! cmp -s "$obs_dir/trace1.json" "$obs_dir/trace2.json"; then
    echo "verify: FAILED (domactl trace Chrome JSON differs across identical runs)" >&2
    exit 1
fi
for key in '"traceEvents"' '"ph": "X"' '"protocol.request"' '"cp": "1"'; do
    if ! grep -qF "$key" "$obs_dir/trace1.json"; then
        echo "verify: FAILED (domactl trace Chrome JSON missing $key)" >&2
        exit 1
    fi
done
if ! ./target/release/domactl trace append-only-6-2 --top 5 > "$obs_dir/trace_table.txt"; then
    echo "verify: FAILED (domactl trace table report)" >&2
    exit 1
fi
if ! grep -q "slowest 5 of" "$obs_dir/trace_table.txt"; then
    echo "verify: FAILED (domactl trace table missing the slowest-K report)" >&2
    exit 1
fi

# ---------------------------------------------------------------------------
# Perf-regression gate: re-run the phase profiler bench and compare its
# medians against the committed BENCH_prof.json baseline; any benchmark
# whose median regressed by more than 25% (or disappeared) fails the
# wall. The committed baseline itself must attribute at least 90% of the
# sharded/1 − sequential delta to named phases.
# ---------------------------------------------------------------------------
frac=$(grep -o '"attributed_fraction": [0-9.]*' BENCH_prof.json | awk '{print $2}')
if [ -z "$frac" ] || ! awk -v f="$frac" 'BEGIN { exit !(f >= 0.9) }'; then
    echo "verify: FAILED (BENCH_prof.json attributed_fraction '$frac' < 0.9)" >&2
    exit 1
fi
if ! DOMA_BENCH_JSON="$obs_dir/prof.json" cargo bench -q --offline -p doma-bench --bench shard_prof > "$obs_dir/prof.log" 2>&1; then
    cat "$obs_dir/prof.log" >&2
    echo "verify: FAILED (shard_prof bench run)" >&2
    exit 1
fi
if ! ./target/release/domactl perf "$obs_dir/prof.json" --baseline BENCH_prof.json --threshold 0.25; then
    echo "verify: FAILED (perf regression vs committed BENCH_prof.json baseline)" >&2
    exit 1
fi

echo "verify: OK"

//! # Guide: the model in 10 minutes
//!
//! This is a guided tour of the concepts, in the order the paper (Huang &
//! Wolfson, ICDE 1994) introduces them, with runnable snippets.
//!
//! ## 1. Schedules
//!
//! A **schedule** is a finite, totally ordered sequence of read/write
//! requests against one object, each issued by a processor. The textual
//! notation is the paper's: `r3` is a read by processor 3, `w0` a write by
//! processor 0.
//!
//! ```
//! use doma::Schedule;
//! let schedule: Schedule = "w2 r4 w3 r1 r2".parse().unwrap(); // the paper's ψ₀
//! assert_eq!(schedule.write_count(), 2);
//! ```
//!
//! ## 2. Allocation schemes, execution sets, saving-reads
//!
//! At any moment, the **allocation scheme** is the set of processors whose
//! local databases hold the latest version. Serving a request maps it to
//! an **execution set**: the processors that perform it. A read whose
//! result is also stored at the reader is a **saving-read** — the reader
//! joins the scheme. A write's execution set *becomes* the scheme
//! (everything else is invalidated).
//!
//! Two constraints make an allocation schedule admissible: **legality**
//! (every read's execution set intersects the current scheme) and
//! **t-availability** (the scheme never has fewer than `t` members).
//!
//! ## 3. The cost model
//!
//! Three unit costs: `cio` per local-database input/output, `cc` per
//! control message (requests, invalidations), `cd` per data message (the
//! object in transit), with `cc ≤ cd` always. **Stationary computing**
//! normalizes `cio = 1`; **mobile computing** sets `cio = 0` (only
//! wireless messages are billed). This library tallies the three resources
//! as exact integers and prices them at the end:
//!
//! ```
//! use doma::{CostModel, CostVector};
//! let v = CostVector::new(2, 1, 3); // 2 control msgs, 1 data msg, 3 I/Os
//! let sc = CostModel::stationary(0.5, 1.0).unwrap();
//! assert_eq!(v.eval(&sc), 2.0 * 0.5 + 1.0 + 3.0);
//! let mc = CostModel::mobile(0.5, 1.0).unwrap();
//! assert_eq!(v.eval(&mc), 2.0 * 0.5 + 1.0); // I/O is free
//! ```
//!
//! ## 4. The algorithms
//!
//! **SA** (static allocation) fixes a scheme `Q` of size `t` and does
//! read-one-write-all. **DA** (dynamic allocation) fixes a core `F` of
//! `t-1` processors plus a floating member; non-member reads become
//! saving-reads, writes shrink the scheme back to `F` plus the writer (or
//! the original floater), invalidating the rest via per-core join-lists.
//!
//! ```
//! use doma::algorithms::{DynamicAllocation, StaticAllocation};
//! use doma::core::run_online;
//! use doma::{ProcSet, ProcessorId, Schedule};
//!
//! let schedule: Schedule = "r2 r2 r2".parse().unwrap();
//! let mut sa = StaticAllocation::new(ProcSet::from_iter([0, 1])).unwrap();
//! let mut da = DynamicAllocation::new(ProcSet::from_iter([0]), ProcessorId::new(1)).unwrap();
//! let sa_run = run_online(&mut sa, &schedule).unwrap();
//! let da_run = run_online(&mut da, &schedule).unwrap();
//! // DA turned the first read into a saving-read; the rest were local.
//! assert!(da_run.costed.total.io > sa_run.costed.total.io); // one extra store…
//! assert!(da_run.costed.total.data < sa_run.costed.total.data); // …saves transfers
//! ```
//!
//! ## 5. Competitive analysis
//!
//! An online algorithm is **α-competitive** if its cost is at most
//! `α · OPT + β` on *every* schedule, where OPT is the optimal offline
//! algorithm. [`doma::algorithms::OfflineOptimal`] computes OPT exactly
//! (a dynamic program over allocation schemes), so competitive ratios are
//! *measured*, not estimated:
//!
//! ```
//! use doma::algorithms::OfflineOptimal;
//! use doma::{CostModel, ProcSet, Schedule};
//!
//! let model = CostModel::stationary(0.5, 1.5).unwrap();
//! let opt = OfflineOptimal::new(4, 2, ProcSet::from_iter([0, 1]), model).unwrap();
//! let schedule: Schedule = "r2 r2 r2 r2".parse().unwrap();
//! // OPT saves the first remote read, then reads locally.
//! assert_eq!(opt.optimal_cost(&schedule).unwrap(), (0.5 + 2.0 + 1.5) + 3.0);
//! ```
//!
//! The paper's results, all reproduced in EXPERIMENTS.md: SA is tightly
//! `(1+cc+cd)`-competitive in SC but *not competitive at all* in MC; DA is
//! `(2+2cc)`-competitive (`(2+cc)` when `cd > 1`), `(2+3cc/cd) ≤ 5` in MC,
//! and no better than 1.5-competitive — the adversary behind that last
//! bound, omitted in the paper, is
//! [`doma::algorithms::adversary::da_prop2_cycle`], which this library's
//! exhaustive asymptotic pattern search rediscovered.
//!
//! ## 6. From model to system
//!
//! Everything above is analytic. [`doma::protocol::ProtocolSim`] runs SA
//! and DA as real message-passing protocols on a deterministic
//! discrete-event simulator over versioned, redo-logged local stores — and
//! its message/I/O tallies equal the analytic model's *exactly*, which the
//! integration tests assert on randomized workloads. From there you get
//! the things a model can't show: read latencies, shared-bus contention,
//! crash + quorum-fallback + missing-writes recovery, multi-object
//! catalogs with core placement, and optional memory caching.
//!
//! Continue with the runnable examples (`cargo run --example quickstart`)
//! and the experiment harness (`cargo run --release -p doma-analysis --bin
//! repro`).

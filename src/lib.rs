//! # doma — Distributed Object Management Algorithms
//!
//! A full reproduction of Huang & Wolfson, *"Object Allocation in
//! Distributed Databases and Mobile Computers"*, ICDE 1994: the unified
//! I/O + communication cost model, the static (SA) and dynamic (DA)
//! allocation algorithms, the exact offline optimum used as the
//! competitive-analysis yardstick, a discrete-event protocol simulator,
//! workload generators, and the analysis harness that regenerates the
//! paper's figures and bounds.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`core`] — model, cost engine, validation, DOM traits;
//! * [`algorithms`] — SA, DA, OPT, baselines, adversaries;
//! * [`storage`] — versioned local stores with I/O accounting;
//! * [`sim`] — deterministic discrete-event simulator;
//! * [`protocol`] — SA/DA as message-passing protocols;
//! * [`workload`] — schedule generators;
//! * [`analysis`] — competitive-ratio harness, region maps, reports;
//! * [`fault`] — fault-injection torture harness with invariant checking
//!   and seed replay;
//! * [`scenario`] — declarative scenario configs, the builtin scenario
//!   library and the golden-trace conformance runner.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub mod guide;

pub use doma_algorithms as algorithms;
pub use doma_analysis as analysis;
pub use doma_core as core;
pub use doma_fault as fault;
pub use doma_protocol as protocol;
pub use doma_scenario as scenario;
pub use doma_sim as sim;
pub use doma_storage as storage;
pub use doma_workload as workload;

// Convenience re-exports of the most-used types at the crate root.
pub use doma_core::{
    AllocationSchedule, CostModel, CostVector, Decision, Environment, MultiSchedule, ObjectId,
    ProcSet, ProcessorId, Request, Schedule,
};
